package val

import (
	"sync"
	"sync/atomic"
)

// Interner resolves structurally-equal tuples (and the strings and list
// values inside them) to single canonical objects, so that the same
// logical fact materialized many times — decoded from successive wire
// messages, re-instantiated by every derivation round, rebuilt by
// aggregate maintenance — is one allocation shared by every reference.
// After interning, tuple equality on the hot path degenerates to a
// pointer comparison (Tuple.Equal's shared-storage fast path) and the
// decode/head-instantiation scratch buffers never escape.
//
// Entries are keyed by the engine-wide Hash64 fold with short collision
// buckets resolved by structural equality, exactly like the storage
// layer: a hash collision costs one extra comparison, never identity.
//
// Ownership rules (DESIGN.md §3):
//
//   - Canonical objects are immutable. The interner hands out tuples whose
//     Fields (and nested lists) may be shared by tables, queues, and other
//     tuples; nothing may write through them.
//   - The interner never retains caller storage that the caller may reuse
//     or mutate: InternFields and InternValues copy on miss, and the
//     decode path copies wire bytes into fresh strings before they are
//     retained (never aliasing the read buffer).
//   - An interner is a cache, not an owner: dropping or Reset()-ing one
//     is always safe — live references keep their objects alive, and a
//     future intern of an equal tuple merely mints a new canonical copy.
//
// The pool is bounded by a two-generation scheme (the idiom of scanning
// caches): lookups consult the current generation, then the previous
// one — promoting hits — and when the current generation reaches the
// limit it becomes the previous one, dropping the oldest cold entries.
// Soft-state workloads that churn tuples forever therefore cannot grow
// the interner without bound, and an expired tuple's canonical row ages
// out instead of dangling.
//
// A plain Interner (NewInterner) is not safe for concurrent use; the
// engine keeps one per node (each node is owned by one worker at a
// time). NewConcurrentInterner returns a sharded variant whose
// intern/resolve operations are safe from any number of goroutines —
// see its doc for the sharding scheme and the decode-path caveat.
type Interner struct {
	limit int
	cur   internGen
	old   internGen
	// scratch is the shared decode/instantiation arena: callers append
	// candidate values, intern the completed range, and truncate back.
	// Stack discipline (mark/truncate) makes nested lists compose.
	scratch []Value
	// post, when non-nil, maps every computed key hash before bucket
	// lookup. Tests inject truncating maps to force structurally-distinct
	// entries into one bucket; production interners leave it nil.
	post func(uint64) uint64
	// epoch counts generation flips (see Epoch).
	epoch int
	// conc, when non-nil, marks this interner as a concurrent façade:
	// every intern/resolve operation routes — whole — into the shard
	// selected by the operation's primary hash, under that shard's lock.
	// The façade's own generations stay empty; its memo and post hook are
	// never written, so computing routing keys through the façade is a
	// read-only operation.
	conc []concShard
	// concEpoch aggregates generation flips across shards (façade only).
	concEpoch atomic.Int64
	// sharedEpoch points a shard at its façade's concEpoch so flips
	// anywhere surface through the façade's Epoch().
	sharedEpoch *atomic.Int64
	// One-entry memo of the last list hashed by the list pool: tuple-key
	// folds over the same canonical slice reuse the hash instead of
	// re-folding every element (a decoded path vector is hashed once,
	// not once for the list pool and again for the tuple key). The memo
	// holds the slice alive, so the pointer cannot be recycled.
	memoPtr  *Value
	memoLen  int
	memoHash uint64
}

// internGen is one generation of the pool. All maps are created lazily
// on first insert, so an interner on a workload that never pools (small
// flat tuples only) costs one struct allocation and nothing else. The
// first entry per hash lives inline in the value maps (no per-entry
// bucket slice to allocate); genuine 64-bit collisions overflow into
// the *N maps, which hold the second and later entries of a bucket.
type internGen struct {
	tuple1 map[uint64]Tuple
	tupleN map[uint64][]Tuple
	list1  map[uint64][]Value
	listN  map[uint64][][]Value
	strs   map[string]string
	n      int // total entries across all maps
}

// findTuple returns the generation's canonical tuple for (pred, fields)
// under hash h. Overflow entries exist only when the inline slot is
// taken, so the common path is one map read.
func (g *internGen) findTuple(h uint64, pred string, fields []Value) (Tuple, bool) {
	c, ok := g.tuple1[h]
	if !ok {
		return Tuple{}, false
	}
	if c.Pred == pred && ValuesEqual(c.Fields, fields) {
		return c, true
	}
	for _, c := range g.tupleN[h] {
		if c.Pred == pred && ValuesEqual(c.Fields, fields) {
			return c, true
		}
	}
	return Tuple{}, false
}

func (g *internGen) putTuple(h uint64, t Tuple) {
	if g.tuple1 == nil {
		g.tuple1 = map[uint64]Tuple{}
	}
	if _, ok := g.tuple1[h]; !ok {
		g.tuple1[h] = t
	} else {
		// Structurally-distinct hash collision: overflow bucket.
		if g.tupleN == nil {
			g.tupleN = map[uint64][]Tuple{}
		}
		g.tupleN[h] = append(g.tupleN[h], t)
	}
	g.n++
}

func (g *internGen) findList(h uint64, vs []Value) ([]Value, bool) {
	c, ok := g.list1[h]
	if !ok {
		return nil, false
	}
	if ValuesEqual(c, vs) {
		return c, true
	}
	for _, c := range g.listN[h] {
		if ValuesEqual(c, vs) {
			return c, true
		}
	}
	return nil, false
}

func (g *internGen) putList(h uint64, vs []Value) {
	if g.list1 == nil {
		g.list1 = map[uint64][]Value{}
	}
	if _, ok := g.list1[h]; !ok {
		g.list1[h] = vs
	} else {
		if g.listN == nil {
			g.listN = map[uint64][][]Value{}
		}
		g.listN[h] = append(g.listN[h], vs)
	}
	g.n++
}

// DefaultInternLimit bounds one generation of the default interner. Two
// generations of tuples at typical path-vector sizes stay in the tens of
// megabytes; cold entries beyond that age out.
const DefaultInternLimit = 1 << 17

// NewInterner returns an empty interner with the default size bound.
func NewInterner() *Interner { return newInterner(DefaultInternLimit, nil) }

// concShard is one lock-protected slice of a concurrent interner: a
// plain Interner guarded by a mutex. Operations route by the top bits
// of their primary hash, so independent keys contend only 1/nshards of
// the time and the pointer-equality invariant holds globally — a tuple
// key always lands in the same shard, so structurally-equal tuples
// resolve to one canonical object no matter which worker interns them.
type concShard struct {
	mu sync.Mutex
	in *Interner
	// Pad each shard to a cache line (mutex 8B + pointer 8B + 48B) so
	// uncontended locks on neighboring shards do not false-share.
	_ [48]byte
}

// concShardBits sizes the shard array: 1<<concShardBits shards, routed
// by the top concShardBits bits of the primary hash.
const concShardBits = 5

// NewConcurrentInterner returns an interner safe for concurrent
// intern/resolve calls from any number of goroutines. It shards the
// pool by hash: each operation computes its primary hash lock-free,
// then executes entirely inside one mutex-guarded shard, so two workers
// interning unrelated tuples almost never contend while two workers
// interning the same tuple serialize and receive the same canonical
// object (pointer equality survives concurrency).
//
// Lists referenced by tuples may be pooled in the tuple's shard rather
// than the list hash's shard, so an identical list can hold canonical
// copies in more than one shard; that duplicates a little memory but
// never identity — tuple canonicalization is what equality fast paths
// rely on, and tuples are globally unique.
//
// Caveat: the wire-decode entry points (DecodeTupleIn and friends) use
// the receiver's scratch arena, which the façade owns unsynchronized.
// Decoding through a concurrent interner is safe only when the decode
// calls themselves are externally serialized (in-tree they are: netrun
// decodes under per-node locks, and the in-process parallel executor
// passes tuples by reference without re-encoding). Intern/Resolve/
// InternValues/InternString need no external synchronization.
func NewConcurrentInterner() *Interner {
	const nshards = 1 << concShardBits
	f := &Interner{conc: make([]concShard, nshards)}
	for i := range f.conc {
		s := newInterner(DefaultInternLimit/nshards, nil)
		s.sharedEpoch = &f.concEpoch
		f.conc[i].in = s
	}
	return f
}

// Concurrent reports whether in is a sharded façade safe for concurrent
// intern/resolve use.
func (in *Interner) Concurrent() bool { return in.conc != nil }

// shard picks the shard owning primary hash h.
func (in *Interner) shard(h uint64) *concShard {
	return &in.conc[h>>(64-concShardBits)]
}

// newInterner exists so tests can shrink the bound and truncate the key
// hash to force collision buckets.
func newInterner(limit int, post func(uint64) uint64) *Interner {
	if limit < 1 {
		limit = 1
	}
	// Both generations start zero: nil maps read as empty and allocate
	// on first insert.
	return &Interner{limit: limit, post: post}
}

// InternWorthy reports whether pooling a tuple with these fields pays.
// Interning trades a hash-and-probe per touch for shared storage, so it
// wins exactly where tuples are expensive to materialize and compare:
// variable-size payloads (path vectors and other lists) and wide rows.
// A flat tuple of a few scalar words costs less to copy than to probe —
// the engine leaves those on the plain allocation path. Explicit
// Intern/InternFields calls are not gated: callers who know their
// population (tests, tools) may pool anything.
func InternWorthy(fields []Value) bool {
	if len(fields) >= 6 {
		return true
	}
	for i := range fields {
		if fields[i].kind == KindList {
			return true
		}
	}
	return false
}

// HashPredicate returns the hash state after folding a predicate name —
// the fixed prefix of every tuple key for that predicate. Rule compilers
// and tables cache it so per-tuple hashing folds only the fields.
func HashPredicate(pred string) Hash64 { return NewHash().AddString(pred) }

// tupleKey finishes a tuple key from the predicate's cached hash state,
// consistent with Tuple.Hash. List fields the list pool just hashed
// (the memo) fold their cached sub-hash instead of re-folding every
// element — AddValue composes lists as length + HashValues precisely so
// this splice is exact.
func (in *Interner) tupleKey(ph Hash64, fields []Value) uint64 {
	for i := range fields {
		f := &fields[i]
		if f.kind == KindList && len(f.l) > 0 && &f.l[0] == in.memoPtr && len(f.l) == in.memoLen {
			ph = ph.addByte(byte(KindList)).addUint64(uint64(len(f.l))).addUint64(in.memoHash)
			continue
		}
		ph = ph.AddValue(*f)
	}
	k := ph.Sum()
	if in.post != nil {
		k = in.post(k)
	}
	return k
}

// hashList hashes a list payload (consistent with HashValues), reusing
// the memoized hash when vs is the memoized slice.
func (in *Interner) hashList(vs []Value) uint64 {
	if len(vs) > 0 && &vs[0] == in.memoPtr && len(vs) == in.memoLen {
		return in.memoHash
	}
	return HashValues(vs)
}

// memoize records the canonical slice the list pool just hashed.
func (in *Interner) memoize(vs []Value, raw uint64) {
	if len(vs) == 0 {
		return
	}
	in.memoPtr, in.memoLen, in.memoHash = &vs[0], len(vs), raw
}

// listKey applies the test hook to a raw list hash.
func (in *Interner) listKey(raw uint64) uint64 {
	if in.post != nil {
		return in.post(raw)
	}
	return raw
}

// Len returns the number of retained entries (tuples, list values and
// strings) across both generations. Promoted entries appear in both, so
// this is exact only while the interner has never flipped a generation.
func (in *Interner) Len() int {
	if in.conc != nil {
		n := 0
		for i := range in.conc {
			s := &in.conc[i]
			s.mu.Lock()
			n += s.in.Len()
			s.mu.Unlock()
		}
		return n
	}
	return in.cur.n + in.old.n
}

// Reset drops every retained entry and the scratch arena. Safe at any
// time: canonical objects referenced elsewhere stay alive, and future
// interns mint fresh canonicals.
func (in *Interner) Reset() {
	if in.conc != nil {
		for i := range in.conc {
			s := &in.conc[i]
			s.mu.Lock()
			s.in.Reset()
			s.mu.Unlock()
		}
	}
	in.cur = internGen{}
	in.old = internGen{}
	in.scratch = in.scratch[:0]
	in.memoPtr, in.memoLen, in.memoHash = nil, 0, 0
}

// flipIfFull starts a new generation once the current one is at the
// bound, discarding the previous generation's cold entries.
func (in *Interner) flipIfFull() {
	if in.cur.n >= in.limit {
		in.old = in.cur
		in.cur = internGen{}
		in.epoch++
		if in.sharedEpoch != nil {
			in.sharedEpoch.Add(1)
		}
	}
}

// Epoch counts generation flips — on a concurrent façade, across every
// shard. An entry interned two or more epochs ago may have been
// evicted; callers caching "already pooled" state (table rows)
// re-intern when the epoch has advanced that far. (A concurrent façade
// flips per shard, so one façade epoch evicts only 1/nshards of the
// pool; the "two epochs ⇒ maybe evicted" contract still holds — it is
// conservative in the sharded case.)
func (in *Interner) Epoch() int {
	if in.conc != nil {
		return int(in.concEpoch.Load())
	}
	return in.epoch
}

// findTuple looks h up in both generations, promoting old-generation
// hits so they survive the next flip.
func (in *Interner) findTuple(h uint64, pred string, fields []Value) (Tuple, bool) {
	if c, ok := in.cur.findTuple(h, pred, fields); ok {
		return c, true
	}
	if in.old.n != 0 {
		if c, ok := in.old.findTuple(h, pred, fields); ok {
			in.putTuple(h, c)
			return c, true
		}
	}
	return Tuple{}, false
}

func (in *Interner) putTuple(h uint64, t Tuple) {
	in.flipIfFull()
	in.cur.putTuple(h, t)
}

// Intern returns the canonical tuple structurally equal to t. When t is
// new, t itself becomes canonical: the caller transfers ownership of its
// storage, which must be immutable from here on (tuples always are; do
// not pass a tuple built over a scratch buffer — use InternFields).
// Newly-adopted tuples also have their list fields resolved into the
// list pool, so future decodes and instantiations of the same lists hit.
func (in *Interner) Intern(t Tuple) Tuple {
	return in.InternH(HashPredicate(t.Pred), t)
}

// InternH is Intern taking the predicate's cached hash state (see
// HashPredicate), skipping the per-call predicate fold.
func (in *Interner) InternH(ph Hash64, t Tuple) Tuple {
	h := in.tupleKey(ph, t.Fields)
	if in.conc != nil {
		s := in.shard(h)
		s.mu.Lock()
		c := s.in.internKeyed(h, t)
		s.mu.Unlock()
		return c
	}
	return in.internKeyed(h, t)
}

// internKeyed is the InternH core under a precomputed tuple key; on a
// concurrent interner it runs inside the owning shard's lock.
func (in *Interner) internKeyed(h uint64, t Tuple) Tuple {
	if c, ok := in.findTuple(h, t.Pred, t.Fields); ok {
		return c
	}
	// Resolve list fields into the list pool. Never write through
	// t.Fields: its storage may already be shared (out-deltas, decode
	// results), and canonical objects are immutable — if a list resolves
	// to a different canonical array, the adopted tuple gets a fresh
	// fields slice instead.
	var fs []Value
	for i := range t.Fields {
		f := t.Fields[i]
		if f.kind != KindList || len(f.l) == 0 {
			continue
		}
		cl := in.adoptValues(f.l)
		if &cl[0] == &f.l[0] {
			continue // pool adopted t's own storage; nothing to rewrite
		}
		if fs == nil {
			fs = append([]Value(nil), t.Fields...)
		}
		fs[i] = Value{kind: KindList, l: cl}
	}
	if fs != nil {
		t = Tuple{Pred: t.Pred, Fields: fs}
	}
	in.putTuple(h, t)
	return t
}

// InternFields returns the canonical tuple for (pred, fields). fields
// may be scratch storage: it is copied on miss and never retained, so
// hot paths can instantiate candidate rows in a reusable buffer and only
// pay an allocation for tuples never seen before.
func (in *Interner) InternFields(pred string, fields []Value) Tuple {
	h := in.tupleKey(HashPredicate(pred), fields)
	if in.conc != nil {
		s := in.shard(h)
		s.mu.Lock()
		c := s.in.internFieldsKeyed(h, pred, fields)
		s.mu.Unlock()
		return c
	}
	return in.internFieldsKeyed(h, pred, fields)
}

func (in *Interner) internFieldsKeyed(h uint64, pred string, fields []Value) Tuple {
	if c, ok := in.findTuple(h, pred, fields); ok {
		return c
	}
	fs := make([]Value, len(fields))
	copy(fs, fields)
	t := Tuple{Pred: pred, Fields: fs}
	in.putTuple(h, t)
	return t
}

// Resolve returns the canonical tuple for (pred, fields) when one is
// interned, copying fields into a fresh tuple otherwise — without
// retaining the miss. It is the read-only counterpart of InternFields
// for producers whose output is often never seen twice (head
// instantiation explores many candidate paths once; wire decode carries
// many one-shot deltas): re-derivations and re-arrivals of a tuple some
// table already owns collapse onto the canonical copy, while one-shot
// tuples cost a plain copy instead of polluting the pool with a map
// insert each. Only storage (Intern at table-insert time) populates the
// pool.
func (in *Interner) Resolve(pred string, fields []Value) Tuple {
	return in.ResolveH(HashPredicate(pred), pred, fields)
}

// ResolveH is Resolve taking the predicate's cached hash state (see
// HashPredicate), skipping the per-call predicate fold — the form the
// head-instantiation hot path uses (rule compilation caches the hash).
func (in *Interner) ResolveH(ph Hash64, pred string, fields []Value) Tuple {
	h := in.tupleKey(ph, fields)
	if in.conc != nil {
		s := in.shard(h)
		s.mu.Lock()
		c, ok := s.in.findTuple(h, pred, fields)
		s.mu.Unlock()
		if ok {
			return c
		}
		fs := make([]Value, len(fields))
		copy(fs, fields)
		return Tuple{Pred: pred, Fields: fs}
	}
	if c, ok := in.findTuple(h, pred, fields); ok {
		return c
	}
	fs := make([]Value, len(fields))
	copy(fs, fields)
	return Tuple{Pred: pred, Fields: fs}
}

// ResolveTuple returns the canonical tuple equal to t when one is
// interned, t itself otherwise (no copy, no retention).
func (in *Interner) ResolveTuple(t Tuple) Tuple {
	h := in.tupleKey(HashPredicate(t.Pred), t.Fields)
	if in.conc != nil {
		s := in.shard(h)
		s.mu.Lock()
		c, ok := s.in.findTuple(h, t.Pred, t.Fields)
		s.mu.Unlock()
		if ok {
			return c
		}
		return t
	}
	if c, ok := in.findTuple(h, t.Pred, t.Fields); ok {
		return c
	}
	return t
}

// InternValues returns the canonical value slice structurally equal to
// vs, copying on miss (vs may be scratch). Callers must treat the result
// as immutable. Used for list payloads and retained aggregate group keys.
func (in *Interner) InternValues(vs []Value) []Value {
	if in.conc != nil {
		raw := HashValues(vs)
		s := in.shard(raw)
		s.mu.Lock()
		c := s.in.internValuesKeyed(raw, vs)
		s.mu.Unlock()
		return c
	}
	return in.internValuesKeyed(in.hashList(vs), vs)
}

func (in *Interner) internValuesKeyed(raw uint64, vs []Value) []Value {
	h := in.listKey(raw)
	if c, ok := in.findListH(h, vs); ok {
		in.memoize(c, raw)
		return c
	}
	cp := make([]Value, len(vs))
	copy(cp, vs)
	in.putList(h, cp)
	in.memoize(cp, raw)
	return cp
}

// findListH looks a list key up in both generations, promoting
// old-generation hits.
func (in *Interner) findListH(h uint64, vs []Value) ([]Value, bool) {
	if c, ok := in.cur.findList(h, vs); ok {
		return c, true
	}
	if in.old.n != 0 {
		if c, ok := in.old.findList(h, vs); ok {
			in.putList(h, c)
			return c, true
		}
	}
	return nil, false
}

func (in *Interner) putList(h uint64, vs []Value) {
	in.flipIfFull()
	in.cur.putList(h, vs)
}

// adoptValues is InternValues taking ownership of vs on miss (no copy):
// for callers whose slice is already immutable, like a stored tuple's
// list field.
func (in *Interner) adoptValues(vs []Value) []Value {
	if in.conc != nil {
		// Reached only via a direct façade call; internKeyed's nested
		// adoption already runs on a shard. Adopt into the list hash's
		// own shard.
		raw := HashValues(vs)
		s := in.shard(raw)
		s.mu.Lock()
		c := s.in.adoptKeyed(raw, vs)
		s.mu.Unlock()
		return c
	}
	return in.adoptKeyed(in.hashList(vs), vs)
}

func (in *Interner) adoptKeyed(raw uint64, vs []Value) []Value {
	h := in.listKey(raw)
	if c, ok := in.findListH(h, vs); ok {
		in.memoize(c, raw)
		return c
	}
	in.putList(h, vs)
	in.memoize(vs, raw)
	return vs
}

// resolveList returns the canonical list value for the element range vs
// when one is interned, copying vs into a fresh list otherwise — the
// read-only sibling of adoptValues for the decode path (vs is scratch).
func (in *Interner) resolveList(vs []Value) Value {
	raw := HashValues(vs)
	if in.conc != nil {
		s := in.shard(raw)
		s.mu.Lock()
		c, ok := s.in.findListH(in.listKey(raw), vs)
		s.mu.Unlock()
		if ok {
			return Value{kind: KindList, l: c}
		}
		cp := make([]Value, len(vs))
		copy(cp, vs)
		return Value{kind: KindList, l: cp}
	}
	h := in.listKey(raw)
	if c, ok := in.findListH(h, vs); ok {
		in.memoize(c, raw)
		return Value{kind: KindList, l: c}
	}
	cp := make([]Value, len(vs))
	copy(cp, vs)
	in.memoize(cp, raw)
	return Value{kind: KindList, l: cp}
}

// InternString returns the canonical copy of s.
func (in *Interner) InternString(s string) string {
	if in.conc != nil {
		sh := in.shard(NewHash().AddString(s).Sum())
		sh.mu.Lock()
		c := sh.in.InternString(s)
		sh.mu.Unlock()
		return c
	}
	if c, ok := in.cur.strs[s]; ok {
		return c
	}
	if in.old.n != 0 {
		if c, ok := in.old.strs[s]; ok {
			in.putStr(c)
			return c
		}
	}
	in.putStr(s)
	return s
}

// internBytes returns the canonical string equal to b without allocating
// on a hit (the map lookup converts in place); on miss the bytes are
// copied into a fresh string, so the result never aliases b — wire
// decoders may pass views of a reused read buffer.
func (in *Interner) internBytes(b []byte) string {
	if in.conc != nil {
		// AddBytes folds exactly like AddString on the equal string, so
		// byte views and retained strings route to the same shard.
		sh := in.shard(NewHash().AddBytes(b).Sum())
		sh.mu.Lock()
		c := sh.in.internBytes(b)
		sh.mu.Unlock()
		return c
	}
	if c, ok := in.cur.strs[string(b)]; ok {
		return c
	}
	if in.old.n != 0 {
		if c, ok := in.old.strs[string(b)]; ok {
			in.putStr(c)
			return c
		}
	}
	s := string(b) // copy: the buffer may be scribbled over after return
	in.putStr(s)
	return s
}

func (in *Interner) putStr(s string) {
	in.flipIfFull()
	if in.cur.strs == nil {
		in.cur.strs = map[string]string{}
	}
	in.cur.strs[s] = s
	in.cur.n++
}
