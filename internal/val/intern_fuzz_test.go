package val

import (
	"bytes"
	"testing"
)

// FuzzIntern drives random tuple batches through encode → decode →
// intern and checks the interner's contracts:
//
//   - structural-equal inputs map to the identical canonical object
//     (shared field storage);
//   - interned tuples round-trip Encode byte-for-byte with their plain
//     (interner-free) decode;
//   - none of it aliases the input buffer (the batch is scribbled after
//     decoding and the results re-checked).
func FuzzIntern(f *testing.F) {
	encodeBatch := func(tps []Tuple) []byte {
		var b []byte
		for _, tp := range tps {
			b = AppendTuple(b, tp)
		}
		return b
	}
	f.Add(encodeBatch(internTuples()))
	// A batch with duplicates: identity unification must kick in.
	dup := internTuples()[0]
	f.Add(encodeBatch([]Tuple{dup, dup.Clone(), dup}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, b []byte) {
		in := NewInterner()
		work := append([]byte(nil), b...)

		type decoded struct {
			plain Tuple
			canon Tuple
			enc   []byte
		}
		var ds []decoded
		rest := work
		orig := b
		for len(rest) > 0 {
			plain, n1, err1 := DecodeTuple(orig[len(orig)-len(rest):])
			it, n2, err2 := DecodeTupleIn(rest, in)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("plain and interned decode disagree: %v vs %v", err1, err2)
			}
			if err1 != nil {
				break
			}
			if n1 != n2 {
				t.Fatalf("consumed %d (plain) vs %d (interned) bytes", n1, n2)
			}
			canon := in.Intern(it)
			ds = append(ds, decoded{plain: plain, canon: canon,
				enc: AppendTuple(nil, plain)})
			rest = rest[n2:]
			if len(ds) > 256 {
				break // bound fuzz cost on giant batches
			}
		}

		// Scribble the working buffer: no decoded tuple may change.
		for i := range work {
			work[i] = ^work[i]
		}

		for i, d := range ds {
			if !d.canon.Equal(d.plain) {
				t.Fatalf("tuple %d: interned %v != plain %v", i, d.canon, d.plain)
			}
			// Interned tuples round-trip Encode byte-for-byte.
			if re := AppendTuple(nil, d.canon); !bytes.Equal(re, d.enc) {
				t.Fatalf("tuple %d: interned encode %x != plain encode %x", i, re, d.enc)
			}
			// Structural-equal inputs share one canonical object.
			for j := i + 1; j < len(ds); j++ {
				o := ds[j]
				if d.plain.Equal(o.plain) != sameStorage(d.canon, o.canon) {
					t.Fatalf("tuples %d/%d: equality %v but shared storage %v",
						i, j, d.plain.Equal(o.plain), sameStorage(d.canon, o.canon))
				}
			}
		}
	})
}
