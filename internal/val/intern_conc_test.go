package val

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentInternerIdentity runs the sequential canonical-identity
// contract against the sharded interner: same behavior, different
// routing.
func TestConcurrentInternerIdentity(t *testing.T) {
	in := NewConcurrentInterner()
	if !in.Concurrent() {
		t.Fatal("NewConcurrentInterner must report Concurrent()")
	}
	if NewInterner().Concurrent() {
		t.Fatal("NewInterner must not report Concurrent()")
	}
	for _, tp := range internTuples() {
		c1 := in.Intern(tp)
		c2 := in.Intern(tp.Clone())
		if !sameStorage(c1, c2) {
			t.Errorf("Intern(%v): clones did not unify onto one canonical tuple", tp)
		}
		c3 := in.InternFields(tp.Pred, append([]Value(nil), tp.Fields...))
		if !sameStorage(c1, c3) {
			t.Errorf("InternFields(%v): did not resolve to the canonical tuple", tp)
		}
		if r := in.Resolve(tp.Pred, tp.Fields); !sameStorage(c1, r) {
			t.Errorf("Resolve(%v): did not resolve to the canonical tuple", tp)
		}
		if r := in.ResolveTuple(tp.Clone()); !sameStorage(c1, r) {
			t.Errorf("ResolveTuple(%v): did not resolve to the canonical tuple", tp)
		}
	}
	// Tuples plus their pooled list fields: Len counts both, and must
	// match what the plain interner retains for the same population.
	plain := NewInterner()
	for _, tp := range internTuples() {
		plain.Intern(tp)
	}
	if in.Len() != plain.Len() {
		t.Errorf("Len = %d, want %d (plain interner parity)", in.Len(), plain.Len())
	}
	in.Reset()
	if in.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", in.Len())
	}
}

// TestConcurrentInternerContention hammers one sharded interner from
// many goroutines interning overlapping populations with fresh storage
// each time, then asserts the pointer-equality invariant held globally:
// every worker resolved each logical tuple (and list, and string) to
// the same canonical object. Run under -race this is also the data-race
// proof for the shard routing.
func TestConcurrentInternerContention(t *testing.T) {
	const (
		workers = 8
		tuples  = 200
		rounds  = 5
	)
	in := NewConcurrentInterner()

	// mk builds tuple i with fresh storage on every call, list-bearing so
	// the list pool and string pool are exercised too.
	mk := func(i int) Tuple {
		return NewTuple("path",
			NewAddr(fmt.Sprintf("src-%d", i%17)),
			NewAddr(fmt.Sprintf("dst-%d", i)),
			NewList(NewAddr(fmt.Sprintf("hop-%d", i)), NewAddr("mid"), NewInt(int64(i))),
			NewInt(int64(i%7)),
		)
	}

	got := make([][]Tuple, workers) // got[w][i] = worker w's canonical for tuple i
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]Tuple, tuples)
			for r := 0; r < rounds; r++ {
				for i := 0; i < tuples; i++ {
					c := in.Intern(mk(i))
					if r == 0 && w%2 == 0 {
						// Half the workers double-check the read path too.
						c = in.ResolveTuple(mk(i))
					}
					mine[i] = c
					// Strings and lists canonicalize independently of tuples.
					s1 := in.InternString(fmt.Sprintf("str-%d", i%31))
					s2 := in.InternString(fmt.Sprintf("str-%d", i%31))
					if s1 != s2 {
						t.Errorf("worker %d: InternString not canonical", w)
						return
					}
					l1 := in.InternValues([]Value{NewInt(int64(i % 13)), NewAddr("x")})
					l2 := in.InternValues([]Value{NewInt(int64(i % 13)), NewAddr("x")})
					if len(l1) > 0 && &l1[0] != &l2[0] {
						t.Errorf("worker %d: InternValues not canonical", w)
						return
					}
				}
			}
			got[w] = mine
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := 0; i < tuples; i++ {
		c0 := got[0][i]
		if !c0.Equal(mk(i)) {
			t.Fatalf("tuple %d: canonical %v is not structurally equal to source", i, c0)
		}
		for w := 1; w < workers; w++ {
			if !sameStorage(c0, got[w][i]) {
				t.Fatalf("tuple %d: workers 0 and %d resolved different canonical objects", i, w)
			}
		}
	}
}

// TestConcurrentInternerEpoch checks that shard generation flips
// surface through the façade's atomic epoch counter.
func TestConcurrentInternerEpoch(t *testing.T) {
	in := NewConcurrentInterner()
	if in.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", in.Epoch())
	}
	// Each shard is bounded at DefaultInternLimit/nshards; interning
	// well past the total bound must flip at least one shard.
	n := DefaultInternLimit + DefaultInternLimit/4
	for i := 0; i < n; i++ {
		in.InternString(fmt.Sprintf("k-%d", i))
	}
	if in.Epoch() == 0 {
		t.Fatal("epoch did not advance after overflowing the pool bound")
	}
}
