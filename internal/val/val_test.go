package val

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNil: "nil", KindAddr: "addr", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool", KindList: "list",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewAddr("n1"); v.Kind() != KindAddr || v.Addr() != "n1" {
		t.Errorf("NewAddr roundtrip failed: %v", v)
	}
	if v := NewInt(-42); v.Kind() != KindInt || v.Int() != -42 {
		t.Errorf("NewInt roundtrip failed: %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat roundtrip failed: %v", v)
	}
	if v := NewString("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("NewString roundtrip failed: %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool(true) failed: %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false) failed: %v", v)
	}
	l := NewList(NewInt(1), NewInt(2))
	if l.Kind() != KindList || len(l.List()) != 2 {
		t.Errorf("NewList failed: %v", l)
	}
	if !Nil.IsNil() || NewInt(0).IsNil() {
		t.Error("IsNil misbehaves")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Addr", func() { NewInt(1).Addr() })
	mustPanic("Int", func() { NewString("x").Int() })
	mustPanic("Float", func() { NewString("x").Float() })
	mustPanic("Str", func() { NewInt(1).Str() })
	mustPanic("Bool", func() { NewInt(1).Bool() })
	mustPanic("List", func() { NewInt(1).List() })
}

func TestFloatOnInt(t *testing.T) {
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("NewInt(3).Float() = %v", got)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Nil, Nil, true},
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewFloat(1), false}, // kind-sensitive equality
		{NewAddr("a"), NewAddr("a"), true},
		{NewAddr("a"), NewString("a"), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewBool(false), false},
		{NewFloat(2.5), NewFloat(2.5), true},
		{NewList(NewInt(1)), NewList(NewInt(1)), true},
		{NewList(NewInt(1)), NewList(NewInt(2)), false},
		{NewList(NewInt(1)), NewList(NewInt(1), NewInt(2)), false},
		{NewList(), NewList(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	// A sorted sequence; every earlier element must compare < every later.
	seq := []Value{
		Nil,
		NewAddr("a"), NewAddr("b"),
		NewInt(-1),
		NewInt(3), NewFloat(3.5), NewInt(4),
		NewString("a"), NewString("b"),
		NewBool(false), NewBool(true),
		NewList(), NewList(NewInt(1)), NewList(NewInt(1), NewInt(2)), NewList(NewInt(2)),
	}
	for i := range seq {
		for j := range seq {
			got := seq[i].Compare(seq[j])
			var want int
			switch {
			case i < j:
				want = -1
			case i > j:
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", seq[i], seq[j], got, want)
			}
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if NewInt(3).Compare(NewFloat(3.5)) != -1 {
		t.Error("3 should compare < 3.5")
	}
	if NewFloat(2.5).Compare(NewInt(2)) != 1 {
		t.Error("2.5 should compare > 2")
	}
	// Equal numeric value, differing kind: ties broken by kind for totality.
	if NewInt(3).Compare(NewFloat(3)) == 0 {
		t.Error("int 3 vs float 3 must not compare equal (Equal is kind-sensitive)")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewInt(7)},
		{NewAddr("x"), NewAddr("x")},
		{NewList(NewInt(1), NewString("s")), NewList(NewInt(1), NewString("s"))},
		{NewFloat(1.25), NewFloat(1.25)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values hash differently: %v", p[0])
		}
	}
	if NewAddr("a").Hash() == NewString("a").Hash() {
		t.Error("addr and string with same payload should hash differently")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil, "nil"},
		{NewAddr("n3"), "n3"},
		{NewInt(-5), "-5"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), `"hi"`},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewList(NewInt(1), NewAddr("a")), "[1,a]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{NewInt(3), NewInt(1), NewInt(2)}
	SortValues(vs)
	for i, want := range []int64{1, 2, 3} {
		if vs[i].Int() != want {
			t.Fatalf("SortValues order wrong: %v", vs)
		}
	}
}

// randomValue builds a random value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth <= 0 && k == 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return Nil
	case 1:
		return NewAddr(randomName(r))
	case 2:
		return NewInt(r.Int63n(2000) - 1000)
	case 3:
		return NewFloat(math.Round(r.Float64()*1000) / 8)
	case 4:
		return NewString(randomName(r))
	case 5:
		return NewBool(r.Intn(2) == 0)
	default:
		n := r.Intn(4)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth-1)
		}
		return NewList(vs...)
	}
}

func randomName(r *rand.Rand) string {
	const alpha = "abcdefgh"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func TestPropertyCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r, 2), randomValue(r, 2), randomValue(r, 2)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		// Reflexivity / consistency with Equal.
		if (a.Compare(b) == 0) != a.Equal(b) {
			t.Fatalf("Compare==0 disagrees with Equal: %v vs %v", a, b)
		}
		// Transitivity (only check the <= chain).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v, %v, %v", a, b, c)
		}
	}
}

func TestPropertyHashEqual(t *testing.T) {
	f := func(i int64, s string) bool {
		a, b := NewInt(i), NewInt(i)
		if a.Hash() != b.Hash() {
			return false
		}
		x, y := NewString(s), NewString(s)
		return x.Hash() == y.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
