package val

import "testing"

func link(s, d string, c int64) Tuple {
	return NewTuple("link", NewAddr(s), NewAddr(d), NewInt(c))
}

func TestTupleBasics(t *testing.T) {
	tp := link("a", "b", 5)
	if tp.Arity() != 3 {
		t.Errorf("Arity = %d", tp.Arity())
	}
	if tp.Loc() != "a" {
		t.Errorf("Loc = %q", tp.Loc())
	}
	if got, want := tp.String(), "link(a,b,5)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTupleEqualHash(t *testing.T) {
	a := link("a", "b", 5)
	b := link("a", "b", 5)
	c := link("a", "b", 6)
	d := NewTuple("path", NewAddr("a"), NewAddr("b"), NewInt(5))
	if !a.Equal(b) {
		t.Error("identical tuples not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("distinct tuples Equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal tuples hash differently")
	}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key not canonical")
	}
	short := NewTuple("link", NewAddr("a"))
	if a.Equal(short) {
		t.Error("different arity tuples Equal")
	}
}

func TestTupleKeyOn(t *testing.T) {
	a := link("a", "b", 5)
	if got := a.KeyOn([]int{0, 1}); got != "a,b" {
		t.Errorf("KeyOn(0,1) = %q", got)
	}
	if got := a.KeyOn([]int{2}); got != "5" {
		t.Errorf("KeyOn(2) = %q", got)
	}
	if got := a.KeyOn([]int{5}); got != "<oob>" {
		t.Errorf("KeyOn(oob) = %q", got)
	}
}

func TestTupleProject(t *testing.T) {
	a := link("a", "b", 5)
	p := a.Project("rev", []int{1, 0})
	if p.Pred != "rev" || p.Fields[0].Addr() != "b" || p.Fields[1].Addr() != "a" {
		t.Errorf("Project = %v", p)
	}
}

func TestTupleClone(t *testing.T) {
	a := link("a", "b", 5)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Fields[2] = NewInt(99)
	if a.Fields[2].Int() != 5 {
		t.Error("clone shares field storage")
	}
}

func TestTupleGoString(t *testing.T) {
	if got := link("a", "b", 1).GoString(); got != "val.Tuplelink(a,b,1)" {
		t.Errorf("GoString = %q", got)
	}
}
