package val

import "testing"

// Benchmarks comparing the allocation-free hash substrate against the
// legacy string-key path it replaced (kept for display). The whole-
// tuple BenchmarkTupleHash lives in encode_test.go.

func benchTuple() Tuple {
	return NewTuple("path",
		NewAddr("node-a"), NewAddr("node-z"), NewAddr("node-b"),
		NewList(NewAddr("node-a"), NewAddr("node-b"), NewAddr("node-z")),
		NewFloat(12.75))
}

func BenchmarkTupleHashOn(b *testing.B) {
	t := benchTuple()
	cols := []int{0, 1}
	var sink uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += t.HashOn(cols)
	}
	_ = sink
}

func BenchmarkTupleKeyLegacy(b *testing.B) {
	t := benchTuple()
	var sink int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += len(t.Key())
	}
	_ = sink
}
