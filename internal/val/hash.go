package val

import "math"

// Streaming 64-bit FNV-1a folding, shared by every hash in the engine.
// The storage layer keys its row and index maps by these hashes (with
// structural equality resolving collisions), so the same byte sequence
// must be produced wherever the same logical key is hashed: a probe
// hashing bound values must land in the bucket of the entries whose
// projected fields were hashed at insert time. Strings and lists fold
// their length before their payload so that adjacent variable-length
// values cannot alias ("ab","c" vs "a","bc").

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 is an in-progress 64-bit hash. Start with NewHash, fold values
// in key order, and read the result with Sum.
type Hash64 uint64

// NewHash returns the initial hash state.
func NewHash() Hash64 { return fnvOffset64 }

// Sum returns the accumulated hash.
func (h Hash64) Sum() uint64 { return uint64(h) }

func (h Hash64) addByte(b byte) Hash64 {
	return (h ^ Hash64(b)) * fnvPrime64
}

func (h Hash64) addUint64(x uint64) Hash64 {
	// One word-wide fold instead of eight byte folds: the engine only
	// needs determinism and diffusion (collisions are resolved by Equal),
	// so a multiply with a xor-shift between is plenty.
	h = (h ^ Hash64(x)) * fnvPrime64
	h ^= h >> 32
	return h * fnvPrime64
}

// AddString folds a length-prefixed string.
func (h Hash64) AddString(s string) Hash64 {
	h = h.addUint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = h.addByte(s[i])
	}
	return h
}

// AddValue folds one value: kind tag, then the payload in its native
// binary form (no decimal formatting).
func (h Hash64) AddValue(v Value) Hash64 {
	h = h.addByte(byte(v.kind))
	switch v.kind {
	case KindAddr, KindString:
		h = h.AddString(v.s)
	case KindInt, KindBool:
		h = h.addUint64(uint64(v.i))
	case KindFloat:
		h = h.addUint64(math.Float64bits(v.f))
	case KindList:
		h = h.addUint64(uint64(len(v.l)))
		for i := range v.l {
			h = h.AddValue(v.l[i])
		}
	}
	return h
}

// oobTag marks an out-of-range column in a projection hash; it cannot
// collide with a kind tag.
const oobTag = 0xFF

// AddOOB folds the marker for a projected column that is out of range.
func (h Hash64) AddOOB() Hash64 { return h.addByte(oobTag) }

// Hash returns a 64-bit hash of v, consistent with Equal.
func (v Value) Hash() uint64 { return NewHash().AddValue(v).Sum() }

// HashValues hashes a sequence of values in order. It equals
// Tuple.HashOn for the tuple's projection onto the same columns.
func HashValues(vs []Value) uint64 {
	h := NewHash()
	for i := range vs {
		h = h.AddValue(vs[i])
	}
	return h.Sum()
}

// ValuesEqual reports elementwise equality of two value sequences — the
// collision-resolution counterpart of HashValues.
func ValuesEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
