package val

import "math"

// Streaming 64-bit FNV-1a folding, shared by every hash in the engine.
// The storage layer keys its row and index maps by these hashes (with
// structural equality resolving collisions), so the same byte sequence
// must be produced wherever the same logical key is hashed: a probe
// hashing bound values must land in the bucket of the entries whose
// projected fields were hashed at insert time. Strings and lists fold
// their length before their payload so that adjacent variable-length
// values cannot alias ("ab","c" vs "a","bc").

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 is an in-progress 64-bit hash. Start with NewHash, fold values
// in key order, and read the result with Sum.
type Hash64 uint64

// NewHash returns the initial hash state.
func NewHash() Hash64 { return fnvOffset64 }

// Sum returns the accumulated hash.
func (h Hash64) Sum() uint64 { return uint64(h) }

func (h Hash64) addByte(b byte) Hash64 {
	return (h ^ Hash64(b)) * fnvPrime64
}

func (h Hash64) addUint64(x uint64) Hash64 {
	// One word-wide fold instead of eight byte folds: the engine only
	// needs determinism and diffusion (collisions are resolved by Equal),
	// so a single multiply with a xor-shift is plenty — and the multiply
	// latency chain is what bounds every hash on the hot path.
	h = (h ^ Hash64(x)) * fnvPrime64
	return h ^ (h >> 29)
}

// AddString folds a length-prefixed string, eight bytes per fold. The
// byte-or chain below is the load-combining idiom the compiler lowers
// to a single unaligned load, so short strings (predicate names,
// addresses) cost one or two word folds instead of a serial multiply
// per byte. The length prefix keeps adjacent variable-length values
// from aliasing, including the zero-padded tail word.
func (h Hash64) AddString(s string) Hash64 {
	h = h.addUint64(uint64(len(s)))
	i := 0
	for ; i+8 <= len(s); i += 8 {
		x := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		h = h.addUint64(x)
	}
	if i < len(s) {
		var x uint64
		for j := 0; i < len(s); i, j = i+1, j+8 {
			x |= uint64(s[i]) << j
		}
		h = h.addUint64(x)
	}
	return h
}

// AddBytes folds a byte slice exactly as AddString folds the equal
// string, so routing and bucketing computed over wire views agree with
// hashes computed over the retained strings.
func (h Hash64) AddBytes(b []byte) Hash64 {
	h = h.addUint64(uint64(len(b)))
	i := 0
	for ; i+8 <= len(b); i += 8 {
		x := uint64(b[i]) | uint64(b[i+1])<<8 | uint64(b[i+2])<<16 | uint64(b[i+3])<<24 |
			uint64(b[i+4])<<32 | uint64(b[i+5])<<40 | uint64(b[i+6])<<48 | uint64(b[i+7])<<56
		h = h.addUint64(x)
	}
	if i < len(b) {
		var x uint64
		for j := 0; i < len(b); i, j = i+1, j+8 {
			x |= uint64(b[i]) << j
		}
		h = h.addUint64(x)
	}
	return h
}

// AddValue folds one value: kind tag, then the payload in its native
// binary form (no decimal formatting).
func (h Hash64) AddValue(v Value) Hash64 {
	h = h.addByte(byte(v.kind))
	switch v.kind {
	case KindAddr, KindString:
		h = h.AddString(v.s)
	case KindInt, KindBool:
		h = h.addUint64(uint64(v.i))
	case KindFloat:
		h = h.addUint64(math.Float64bits(v.f))
	case KindList:
		// Fold the length, then the list's own whole hash: composing the
		// sub-hash (instead of splicing element folds) lets callers that
		// already hashed a list reuse that hash when folding an
		// enclosing key (see Interner.hashList).
		h = h.addUint64(uint64(len(v.l)))
		h = h.addUint64(HashValues(v.l))
	}
	return h
}

// oobTag marks an out-of-range column in a projection hash; it cannot
// collide with a kind tag.
const oobTag = 0xFF

// AddOOB folds the marker for a projected column that is out of range.
func (h Hash64) AddOOB() Hash64 { return h.addByte(oobTag) }

// Hash returns a 64-bit hash of v, consistent with Equal.
func (v Value) Hash() uint64 { return NewHash().AddValue(v).Sum() }

// HashValues hashes a sequence of values in order. It equals
// Tuple.HashOn for the tuple's projection onto the same columns.
func HashValues(vs []Value) uint64 {
	h := NewHash()
	for i := range vs {
		h = h.AddValue(vs[i])
	}
	return h.Sum()
}

// ValuesEqual reports elementwise equality of two value sequences — the
// collision-resolution counterpart of HashValues.
func ValuesEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true // shared canonical storage (interned slices)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
