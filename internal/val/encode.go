package val

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire encoding. Tuples cross simulated network links as byte slices so
// that the experiment harness can account bandwidth the way the paper
// does (kBps per node, aggregate MB). The format is a compact
// tag-length-value encoding:
//
//	tuple  := pred(string) nfields(uvarint) value*
//	value  := kind(byte) payload
//	string := len(uvarint) bytes
//
// The encoding round-trips exactly (see TestEncodeRoundTrip) and is also
// used by the opportunistic message-sharing optimizer to measure the
// bytes saved by combining tuples.

// ErrCorrupt is returned when decoding malformed bytes.
var ErrCorrupt = errors.New("val: corrupt encoding")

// AppendValue appends the wire encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNil:
	case KindAddr, KindString:
		dst = appendString(dst, v.s)
	case KindInt:
		dst = binary.AppendVarint(dst, v.i)
	case KindBool:
		dst = append(dst, byte(v.i))
	case KindFloat:
		dst = binary.AppendUvarint(dst, math.Float64bits(v.f))
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.l)))
		for i := range v.l {
			dst = AppendValue(dst, v.l[i])
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeValue decodes one value from b, returning the value and the
// number of bytes consumed. Decoded strings never alias b: they are
// copied (or resolved to an interned copy), so callers may reuse or
// scribble over the buffer once decoding returns.
func DecodeValue(b []byte) (Value, int, error) { return decodeValueIn(b, nil) }

// DecodeValueIn is DecodeValue resolving strings and list payloads
// through in (nil behaves like DecodeValue).
func DecodeValueIn(b []byte, in *Interner) (Value, int, error) { return decodeValueIn(b, in) }

func decodeValueIn(b []byte, in *Interner) (Value, int, error) {
	if len(b) == 0 {
		return Nil, 0, ErrCorrupt
	}
	k := Kind(b[0])
	n := 1
	switch k {
	case KindNil:
		return Nil, n, nil
	case KindAddr, KindString:
		s, m, err := decodeStringIn(b[n:], in)
		if err != nil {
			return Nil, 0, err
		}
		n += m
		if k == KindAddr {
			return NewAddr(s), n, nil
		}
		return NewString(s), n, nil
	case KindInt:
		i, m := binary.Varint(b[n:])
		if m <= 0 {
			return Nil, 0, ErrCorrupt
		}
		return NewInt(i), n + m, nil
	case KindBool:
		if len(b) < n+1 {
			return Nil, 0, ErrCorrupt
		}
		return NewBool(b[n] != 0), n + 1, nil
	case KindFloat:
		u, m := binary.Uvarint(b[n:])
		if m <= 0 {
			return Nil, 0, ErrCorrupt
		}
		return NewFloat(math.Float64frombits(u)), n + m, nil
	case KindList:
		cnt, m := binary.Uvarint(b[n:])
		if m <= 0 {
			return Nil, 0, ErrCorrupt
		}
		n += m
		if in != nil {
			// Decode the elements into the interner's scratch arena and
			// resolve the completed list against the canonical pool: a
			// path vector belonging to any stored tuple costs no
			// allocation, a one-shot list costs the same copy as the
			// plain path (the pool is populated at table-insert time, not
			// here — see Interner.Resolve).
			mark := len(in.scratch)
			for i := uint64(0); i < cnt; i++ {
				v, m, err := decodeValueIn(b[n:], in)
				if err != nil {
					in.scratch = in.scratch[:mark]
					return Nil, 0, err
				}
				in.scratch = append(in.scratch, v)
				n += m
			}
			lv := in.resolveList(in.scratch[mark:])
			in.scratch = in.scratch[:mark]
			return lv, n, nil
		}
		// Cap preallocation by the remaining payload (each element takes
		// at least one byte): a corrupt length must fail on truncation,
		// not allocate first.
		vs := make([]Value, 0, min(cnt, uint64(len(b)-n)))
		for i := uint64(0); i < cnt; i++ {
			v, m, err := decodeValueIn(b[n:], nil)
			if err != nil {
				return Nil, 0, err
			}
			vs = append(vs, v)
			n += m
		}
		return NewList(vs...), n, nil
	}
	return Nil, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, k)
}

// decodeStringIn decodes a length-prefixed string. The result never
// aliases b: string(bytes) copies, and the interner's byte lookup copies
// on miss — the copy-on-decode invariant wire buffers rely on.
func decodeStringIn(b []byte, in *Interner) (string, int, error) {
	l, m := binary.Uvarint(b)
	if m <= 0 || uint64(len(b)-m) < l {
		return "", 0, ErrCorrupt
	}
	bs := b[m : m+int(l)]
	if in != nil {
		return in.internBytes(bs), m + int(l), nil
	}
	return string(bs), m + int(l), nil
}

// AppendString appends the length-prefixed wire encoding of s to dst.
// It is the string primitive of the tuple encoding, exported so that
// control-plane frames (internal/shard) ride the same wire format as
// data tuples.
func AppendString(dst []byte, s string) []byte { return appendString(dst, s) }

// DecodeString decodes one length-prefixed string from b, returning it
// and the bytes consumed. The result never aliases b.
func DecodeString(b []byte) (string, int, error) { return decodeStringIn(b, nil) }

// AppendTuple appends the wire encoding of t to dst.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = appendString(dst, t.Pred)
	dst = binary.AppendUvarint(dst, uint64(len(t.Fields)))
	for i := range t.Fields {
		dst = AppendValue(dst, t.Fields[i])
	}
	return dst
}

// DecodeTuple decodes one tuple from b, returning it and the bytes
// consumed. The tuple owns its storage: no field retains a view of b.
func DecodeTuple(b []byte) (Tuple, int, error) { return DecodeTupleIn(b, nil) }

// DecodeTupleIn is DecodeTuple resolving the decoded tuple — and its
// predicate name, strings, and list values — through in, so a tuple the
// receiving node has stored decodes to its canonical copy without
// allocating. nil behaves like DecodeTuple. Either way the result never
// aliases b.
func DecodeTupleIn(b []byte, in *Interner) (Tuple, int, error) {
	pred, n, err := decodeStringIn(b, in)
	if err != nil {
		return Tuple{}, 0, err
	}
	cnt, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return Tuple{}, 0, ErrCorrupt
	}
	n += m
	if in != nil {
		// Fields go through the scratch arena and the completed tuple
		// resolves against the pool: decoding a tuple this node has
		// stored allocates nothing, a never-stored tuple costs the same
		// copy as the plain path. Small flat tuples skip the probe
		// (InternWorthy) — copying them is cheaper than hashing them.
		mark := len(in.scratch)
		for i := uint64(0); i < cnt; i++ {
			v, m, err := decodeValueIn(b[n:], in)
			if err != nil {
				in.scratch = in.scratch[:mark]
				return Tuple{}, 0, err
			}
			in.scratch = append(in.scratch, v)
			n += m
		}
		fields := in.scratch[mark:]
		var t Tuple
		if InternWorthy(fields) {
			t = in.Resolve(pred, fields)
		} else {
			fs := make([]Value, len(fields))
			copy(fs, fields)
			t = Tuple{Pred: pred, Fields: fs}
		}
		in.scratch = in.scratch[:mark]
		return t, n, nil
	}
	// Cap preallocation by the remaining payload, as in DecodeValue: a
	// corrupt field count fails on truncation instead of allocating.
	fs := make([]Value, 0, min(cnt, uint64(len(b)-n)))
	for i := uint64(0); i < cnt; i++ {
		v, m, err := decodeValueIn(b[n:], nil)
		if err != nil {
			return Tuple{}, 0, err
		}
		fs = append(fs, v)
		n += m
	}
	return Tuple{Pred: pred, Fields: fs}, n, nil
}

// EncodedSize returns the wire size of t in bytes without allocating the
// encoding (used on hot accounting paths).
func EncodedSize(t Tuple) int {
	n := uvarintLen(uint64(len(t.Pred))) + len(t.Pred)
	n += uvarintLen(uint64(len(t.Fields)))
	for i := range t.Fields {
		n += valueSize(t.Fields[i])
	}
	return n
}

func valueSize(v Value) int {
	n := 1
	switch v.kind {
	case KindAddr, KindString:
		n += uvarintLen(uint64(len(v.s))) + len(v.s)
	case KindInt:
		n += varintLen(v.i)
	case KindBool:
		n++
	case KindFloat:
		n += uvarintLen(math.Float64bits(v.f))
	case KindList:
		n += uvarintLen(uint64(len(v.l)))
		for i := range v.l {
			n += valueSize(v.l[i])
		}
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}
