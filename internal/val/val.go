// Package val implements the typed value and tuple substrate used by the
// NDlog engine. Values are a small tagged union covering the types that
// appear in declarative networking programs: network addresses, integers,
// floats, strings, booleans, and lists (used for path vectors).
//
// Values are immutable once constructed. Lists share backing storage, so
// callers must not mutate the slice passed to NewList after construction.
//
// Two more invariants anchor the rest of the system: wire decoding
// copies — a decoded value or tuple never aliases the input buffer, so
// transports may reuse receive buffers — and interning (Interner)
// resolves structurally equal tuples to one canonical object, making
// pointer equality a sound fast path for Equal but never a substitute
// (hash-equal values are re-checked structurally).
package val

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// The kinds of values NDlog programs manipulate.
const (
	KindNil Kind = iota
	KindAddr
	KindInt
	KindFloat
	KindString
	KindBool
	KindList
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindAddr:
		return "addr"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single NDlog field value. The zero Value is Nil.
type Value struct {
	kind Kind
	i    int64   // int and bool (0/1)
	f    float64 // float
	s    string  // string and addr
	l    []Value // list
}

// Nil is the absent value.
var Nil = Value{}

// NewAddr returns an address value. Addresses identify network locations
// and are the type carried by location-specifier attributes.
func NewAddr(a string) Value { return Value{kind: KindAddr, s: a} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewList returns a list value wrapping vs. The caller must not mutate vs
// afterwards.
func NewList(vs ...Value) Value { return Value{kind: KindList, l: vs} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether v is the absent value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// Addr returns the address payload. It panics if v is not an address.
func (v Value) Addr() string {
	if v.kind != KindAddr {
		panic("val: Addr on " + v.kind.String())
	}
	return v.s
}

// Int returns the integer payload. It panics if v is not an int.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("val: Int on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload, converting from int if necessary.
// It panics if v is neither numeric kind.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("val: Float on " + v.kind.String())
}

// Str returns the string payload. It panics if v is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("val: Str on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not a bool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("val: Bool on " + v.kind.String())
	}
	return v.i != 0
}

// List returns the list payload. It panics if v is not a list. Callers
// must not mutate the returned slice.
func (v Value) List() []Value {
	if v.kind != KindList {
		panic("val: List on " + v.kind.String())
	}
	return v.l
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality of two values. Ints and floats are equal
// only if both kind and numeric value match (1 != 1.0), keeping equality
// consistent with Hash.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindAddr, KindString:
		return v.s == o.s
	case KindInt, KindBool:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindList:
		if len(v.l) != len(o.l) {
			return false
		}
		if len(v.l) > 0 && &v.l[0] == &o.l[0] {
			return true // shared canonical storage (interned lists)
		}
		for i := range v.l {
			if !v.l[i].Equal(o.l[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders values. Values of different kinds order by kind; within a
// kind the natural order applies; lists order lexicographically. The result
// is -1, 0, or +1. Numeric cross-kind comparison (int vs float) compares by
// numeric value first and breaks ties by kind so that Compare remains a
// total order consistent with Equal.
func (v Value) Compare(o Value) int {
	if v.kind == KindInt && o.kind == KindInt {
		// Compare ints exactly: the float path below would collapse
		// distinct values beyond 2^53, breaking the total order Tuples()
		// ordering depends on.
		return cmpInt(v.i, o.i)
	}
	vn, on := v.IsNumeric(), o.IsNumeric()
	if vn && on {
		vf, of := v.Float(), o.Float()
		switch {
		case vf < of:
			return -1
		case vf > of:
			return 1
		}
		return cmpInt(int64(v.kind), int64(o.kind))
	}
	if v.kind != o.kind {
		return cmpInt(int64(v.kind), int64(o.kind))
	}
	switch v.kind {
	case KindNil:
		return 0
	case KindAddr, KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		return cmpInt(v.i, o.i)
	case KindList:
		n := len(v.l)
		if len(o.l) < n {
			n = len(o.l)
		}
		for i := 0; i < n; i++ {
			if c := v.l[i].Compare(o.l[i]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(v.l)), int64(len(o.l)))
	}
	return 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders v in NDlog literal syntax. Addresses print bare, strings
// print quoted, lists print in brackets.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindAddr:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindList:
		var b strings.Builder
		b.WriteByte('[')
		for i := range v.l {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.l[i].String())
		}
		b.WriteByte(']')
		return b.String()
	}
	return "?"
}

// SortValues sorts vs in place using Compare.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
