package parser

import (
	"strings"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// shortestPathSrc is the paper's Figure 1 program in our surface syntax.
const shortestPathSrc = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3,4)).

SP1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_concatPath(S, nil).
SP2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
	C := C1 + C2, P := f_concatPath(S, P2).
SP3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
SP4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).

query shortestPath(@S,@D,P,C).
`

func TestParseShortestPath(t *testing.T) {
	prog, err := Parse(shortestPathSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Materialized) != 2 {
		t.Fatalf("materialized = %d, want 2", len(prog.Materialized))
	}
	link := prog.Decl("link")
	if link == nil || len(link.Keys) != 2 || link.Keys[0] != 0 || link.Keys[1] != 1 {
		t.Errorf("link decl = %+v", link)
	}
	if link.Lifetime >= 0 {
		t.Errorf("link lifetime should be infinite, got %v", link.Lifetime)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(prog.Rules))
	}
	sp2 := prog.RuleByLabel("SP2")
	if sp2 == nil {
		t.Fatal("no SP2 rule")
	}
	if la := sp2.LinkAtom(); la == nil || la.Pred != "link" {
		t.Errorf("SP2 link atom = %v", la)
	}
	if sp2.IsLocal() {
		t.Error("SP2 should be non-local")
	}
	sp3 := prog.RuleByLabel("SP3")
	if !sp3.Head.HasAggregate() {
		t.Error("SP3 head should have aggregate")
	}
	if idx := sp3.Head.AggregateIndex(); idx != 2 {
		t.Errorf("SP3 aggregate index = %d, want 2", idx)
	}
	agg := sp3.Head.Args[2].(*ast.Agg)
	if agg.Func != ast.AggMin || agg.Var != "C" {
		t.Errorf("SP3 aggregate = %v", agg)
	}
	if prog.Query == nil || prog.Query.Pred != "shortestPath" {
		t.Errorf("query = %v", prog.Query)
	}
	// SP1's head and its single body atom are both located at @S, so the
	// rule is local (Definition 3).
	sp1 := prog.RuleByLabel("SP1")
	if !sp1.IsLocal() {
		t.Error("SP1 should be local: head and link both at @S")
	}
}

func TestParseFacts(t *testing.T) {
	prog, err := Parse(`
link(a, b, 5).
link(b, a, 5).
cost(a, -3).
name(a, "alpha").
pv(a, [a, b], 2.5).
flag(a, true).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 6 {
		t.Fatalf("facts = %d", len(prog.Facts))
	}
	f := prog.Facts[0]
	if f.Pred != "link" || f.Fields[0].Addr() != "a" || f.Fields[1].Addr() != "b" || f.Fields[2].Int() != 5 {
		t.Errorf("fact 0 = %v", f)
	}
	if prog.Facts[2].Fields[1].Int() != -3 {
		t.Errorf("negative const = %v", prog.Facts[2])
	}
	if prog.Facts[3].Fields[1].Str() != "alpha" {
		t.Errorf("string const = %v", prog.Facts[3])
	}
	l := prog.Facts[4].Fields[1]
	if l.Kind() != val.KindList || len(l.List()) != 2 {
		t.Errorf("list const = %v", l)
	}
	if prog.Facts[4].Fields[2].Float() != 2.5 {
		t.Errorf("float const = %v", prog.Facts[4])
	}
	if !prog.Facts[5].Fields[1].Bool() {
		t.Errorf("bool const = %v", prog.Facts[5])
	}
}

func TestParseLabelStyles(t *testing.T) {
	srcs := []string{
		`SP1 p(@S) :- q(@S).`,
		`SP1: p(@S) :- q(@S).`,
		`r1 p(@S) :- q(@S).`,
		`r1: p(@S) :- #link(@S,@D).`,
	}
	for _, src := range srcs {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if len(prog.Rules) != 1 || prog.Rules[0].Label == "" {
			t.Errorf("Parse(%q): rules=%v", src, prog.Rules)
		}
	}
	// Unlabelled rule.
	prog, err := Parse(`p(@S) :- q(@S).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Label != "" {
		t.Errorf("unexpected label %q", prog.Rules[0].Label)
	}
}

func TestParseAssignAndSelect(t *testing.T) {
	r, err := ParseRule(`r p(@S,C) :- q(@S,C1,C2), C := C1 + C2 * 2, C < 10, f_member(P, S) == false.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 4 {
		t.Fatalf("body terms = %d", len(r.Body))
	}
	asn, ok := r.Body[1].(*ast.Assign)
	if !ok || asn.Var != "C" {
		t.Fatalf("term 1 = %v", r.Body[1])
	}
	// Precedence: C1 + (C2 * 2)
	b := asn.Expr.(*ast.BinOp)
	if b.Op != ast.OpAdd {
		t.Errorf("expected +, got %v", b.Op)
	}
	if inner, ok := b.R.(*ast.BinOp); !ok || inner.Op != ast.OpMul {
		t.Errorf("expected * on right, got %v", b.R)
	}
	if _, ok := r.Body[2].(*ast.Select); !ok {
		t.Errorf("term 2 = %T", r.Body[2])
	}
	sel, ok := r.Body[3].(*ast.Select)
	if !ok {
		t.Fatalf("term 3 = %T", r.Body[3])
	}
	cmp := sel.Cond.(*ast.BinOp)
	if cmp.Op != ast.OpEq {
		t.Errorf("expected ==, got %v", cmp.Op)
	}
	if _, ok := cmp.L.(*ast.Call); !ok {
		t.Errorf("expected call on left, got %T", cmp.L)
	}
}

func TestParseEqualsAsAssign(t *testing.T) {
	// The paper writes "P = f_concatPath(...)"; single '=' is assignment.
	r, err := ParseRule(`r p(@S,P) :- q(@S), P = f_concatPath(S, nil).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Body[1].(*ast.Assign); !ok {
		t.Errorf("term 1 = %T, want Assign", r.Body[1])
	}
}

func TestParseWatchAndQueryColon(t *testing.T) {
	prog, err := Parse(`
watch(path).
watch(link).
Query: sp(@S,@D).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Watches) != 2 || prog.Watches[0] != "path" {
		t.Errorf("watches = %v", prog.Watches)
	}
	if prog.Query == nil || prog.Query.Pred != "sp" {
		t.Errorf("query = %v", prog.Query)
	}
}

func TestParseComments(t *testing.T) {
	prog, err := Parse(`
// line comment
/* block
   comment */
p(@S) :- q(@S). // trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Errorf("rules = %d", len(prog.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`p(@S) :- q(@S)`,                    // missing dot
		`p(@S :- q(@S).`,                    // missing paren
		`p(@S) :- .`,                        // empty body term
		`materialize(link, 3).`,             // wrong arity
		`materialize(link, x, 1, keys(1)).`, // bad lifetime
		`materialize(link, 1, 1, keys(0)).`, // key < 1
		`query p(@S). query q(@S).`,         // double query
		`lbl p(a).`,                         // labelled fact
		`p(X).`,                             // non-ground fact
		`p("unterminated).`,                 // bad string
		`/* unterminated`,                   // bad comment
		`p(@S) :- q(@S), @.`,                // @ without name
		`p(1 ? 2).`,                         // bad char
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("p(@S) :-\n  q(@S)")
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *Error
	if !asError(err, &perr) {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should carry position: %v", err)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestRoundTripString(t *testing.T) {
	prog, err := Parse(shortestPathSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Rendering and reparsing must produce the same structure.
	prog2, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, prog.String())
	}
	if len(prog2.Rules) != len(prog.Rules) || len(prog2.Materialized) != len(prog.Materialized) {
		t.Errorf("roundtrip changed shape: %d rules vs %d", len(prog2.Rules), len(prog.Rules))
	}
	for i := range prog.Rules {
		if prog.Rules[i].String() != prog2.Rules[i].String() {
			t.Errorf("rule %d differs:\n%s\n%s", i, prog.Rules[i], prog2.Rules[i])
		}
	}
}

func TestParseAllAggregates(t *testing.T) {
	for _, name := range []string{"min", "max", "count", "sum"} {
		src := `r a(@S, ` + name + `<C>) :- b(@S, C).`
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if !prog.Rules[0].Head.HasAggregate() {
			t.Errorf("%s: no aggregate detected", name)
		}
	}
}

func TestParseNumbers(t *testing.T) {
	prog, err := Parse(`f(a, 1, 2.5, 1e3, -4).`)
	if err != nil {
		t.Fatal(err)
	}
	fs := prog.Facts[0].Fields
	if fs[1].Int() != 1 || fs[2].Float() != 2.5 || fs[3].Float() != 1000 || fs[4].Int() != -4 {
		t.Errorf("fields = %v", fs)
	}
}

func TestParseAddressConstInRule(t *testing.T) {
	r, err := ParseRule(`m magicDst(@D) :- periodic(@D), D == @d12.`)
	if err != nil {
		t.Fatal(err)
	}
	sel := r.Body[1].(*ast.Select)
	cmp := sel.Cond.(*ast.BinOp)
	c := cmp.R.(*ast.Const)
	if c.Value.Kind() != val.KindAddr || c.Value.Addr() != "d12" {
		t.Errorf("address const = %v", c.Value)
	}
}

func TestRuleClone(t *testing.T) {
	r, err := ParseRule(`r p(@S, min<C>) :- #link(@S,@D,C), C := C + 1, C < 9, f_member(P, S) == false.`)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Clone()
	if c.String() != r.String() {
		t.Errorf("clone differs:\n%s\n%s", r, c)
	}
	// Mutating the clone must not affect the original.
	c.Head.Pred = "q"
	c.Body[0].(*ast.Atom).Pred = "other"
	if r.Head.Pred != "p" || r.Body[0].(*ast.Atom).Pred != "link" {
		t.Error("clone shares structure with original")
	}
}
