package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds of the NDlog surface syntax.
type tokKind uint8

const (
	tokEOF      tokKind = iota
	tokIdent            // lower-case identifier: predicate, function, constant address
	tokVar              // upper-case identifier: variable
	tokInt              // integer literal
	tokFloat            // float literal
	tokString           // quoted string literal
	tokLParen           // (
	tokRParen           // )
	tokLBracket         // [
	tokRBracket         // ]
	tokComma            // ,
	tokDot              // .
	tokAt               // @
	tokHash             // #
	tokLt               // <
	tokLe               // <=
	tokGt               // >
	tokGe               // >=
	tokEqEq             // ==
	tokNe               // !=
	tokAssign           // := or =
	tokPlus             // +
	tokMinus            // -
	tokStar             // *
	tokSlash            // /
	tokPercent          // %
	tokAndAnd           // &&
	tokOrOr             // ||
	tokImplies          // :-
	tokColon            // :
)

var tokNames = map[tokKind]string{
	tokEOF: "EOF", tokIdent: "identifier", tokVar: "variable", tokInt: "int",
	tokFloat: "float", tokString: "string", tokLParen: "(", tokRParen: ")",
	tokLBracket: "[", tokRBracket: "]", tokComma: ",", tokDot: ".", tokAt: "@",
	tokHash: "#", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	tokEqEq: "==", tokNe: "!=", tokAssign: ":=", tokPlus: "+", tokMinus: "-",
	tokStar: "*", tokSlash: "/", tokPercent: "%", tokAndAnd: "&&",
	tokOrOr: "||", tokImplies: ":-", tokColon: ":",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

// token is a lexical token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

// lexer turns NDlog source into tokens. It supports //-comments and
// /* */-comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a parse or lex error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r, sz := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.advance(sz)
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			line, col := l.line, l.col
			l.advance(2)
			for !strings.HasPrefix(l.src[l.pos:], "*/") {
				if l.pos >= len(l.src) {
					return l.errorf(line, col, "unterminated comment")
				}
				l.advance(1)
			}
			l.advance(2)
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.pos >= len(l.src) {
		return mk(tokEOF, ""), nil
	}
	r, _ := l.peekRune()

	// Multi-character operators first.
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case ":-":
		l.advance(2)
		return mk(tokImplies, ""), nil
	case ":=":
		l.advance(2)
		return mk(tokAssign, ""), nil
	case "<=":
		l.advance(2)
		return mk(tokLe, ""), nil
	case ">=":
		l.advance(2)
		return mk(tokGe, ""), nil
	case "==":
		l.advance(2)
		return mk(tokEqEq, ""), nil
	case "!=":
		l.advance(2)
		return mk(tokNe, ""), nil
	case "&&":
		l.advance(2)
		return mk(tokAndAnd, ""), nil
	case "||":
		l.advance(2)
		return mk(tokOrOr, ""), nil
	}

	switch r {
	case '(':
		l.advance(1)
		return mk(tokLParen, ""), nil
	case ')':
		l.advance(1)
		return mk(tokRParen, ""), nil
	case '[':
		l.advance(1)
		return mk(tokLBracket, ""), nil
	case ']':
		l.advance(1)
		return mk(tokRBracket, ""), nil
	case ',':
		l.advance(1)
		return mk(tokComma, ""), nil
	case '@':
		l.advance(1)
		return mk(tokAt, ""), nil
	case '#':
		l.advance(1)
		return mk(tokHash, ""), nil
	case '<':
		l.advance(1)
		return mk(tokLt, ""), nil
	case '>':
		l.advance(1)
		return mk(tokGt, ""), nil
	case '=':
		l.advance(1)
		return mk(tokAssign, ""), nil
	case '+':
		l.advance(1)
		return mk(tokPlus, ""), nil
	case '-':
		l.advance(1)
		return mk(tokMinus, ""), nil
	case '*':
		l.advance(1)
		return mk(tokStar, ""), nil
	case '/':
		l.advance(1)
		return mk(tokSlash, ""), nil
	case '%':
		l.advance(1)
		return mk(tokPercent, ""), nil
	case ':':
		l.advance(1)
		return mk(tokColon, ""), nil
	case '"':
		return l.lexString(line, col)
	case '.':
		// "." is end-of-statement unless it begins a float like ".5"
		// (we do not support leading-dot floats; always a dot).
		l.advance(1)
		return mk(tokDot, ""), nil
	}

	if unicode.IsDigit(r) {
		return l.lexNumber(line, col)
	}
	if isIdentStart(r) {
		start := l.pos
		for l.pos < len(l.src) {
			r, sz := l.peekRune()
			if !isIdentCont(r) {
				break
			}
			l.advance(sz)
		}
		text := l.src[start:l.pos]
		first, _ := utf8.DecodeRuneInString(text)
		if unicode.IsUpper(first) || first == '_' {
			return mk(tokVar, text), nil
		}
		return mk(tokIdent, text), nil
	}
	return token{}, l.errorf(line, col, "unexpected character %q", r)
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isIdentCont(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance(1) // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errorf(line, col, "unterminated string")
		}
		r, sz := l.peekRune()
		if r == '"' {
			l.advance(1)
			return token{kind: tokString, text: b.String(), line: line, col: col}, nil
		}
		if r == '\\' {
			l.advance(1)
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated escape")
			}
			e, esz := l.peekRune()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteRune(e)
			default:
				return token{}, l.errorf(l.line, l.col, "unknown escape \\%c", e)
			}
			l.advance(esz)
			continue
		}
		b.WriteRune(r)
		l.advance(sz)
	}
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigitByte(l.src[l.pos]) {
		l.advance(1)
	}
	isFloat := false
	// A '.' is part of the number only if followed by a digit; otherwise it
	// terminates the statement.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isDigitByte(l.src[l.pos+1]) {
		isFloat = true
		l.advance(1)
		for l.pos < len(l.src) && isDigitByte(l.src[l.pos]) {
			l.advance(1)
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.advance(1)
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.advance(1)
		}
		if l.pos < len(l.src) && isDigitByte(l.src[l.pos]) {
			isFloat = true
			for l.pos < len(l.src) && isDigitByte(l.src[l.pos]) {
				l.advance(1)
			}
		} else {
			// not an exponent; rewind
			l.pos = save
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: l.src[start:l.pos], line: line, col: col}, nil
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }
