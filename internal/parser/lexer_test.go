package parser

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func kinds(ts []token) []tokKind {
	out := make([]tokKind, len(ts))
	for i, t := range ts {
		out[i] = t.kind
	}
	return out
}

func TestLexOperators(t *testing.T) {
	src := `:- := <= >= == != && || ( ) [ ] , . @ # < > = + - * / % :`
	want := []tokKind{
		tokImplies, tokAssign, tokLe, tokGe, tokEqEq, tokNe, tokAndAnd,
		tokOrOr, tokLParen, tokRParen, tokLBracket, tokRBracket, tokComma,
		tokDot, tokAt, tokHash, tokLt, tokGt, tokAssign, tokPlus, tokMinus,
		tokStar, tokSlash, tokPercent, tokColon,
	}
	got := kinds(lexAll(t, src))
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexIdentifiersAndVars(t *testing.T) {
	ts := lexAll(t, `path Path _x f_concat x-y node1`)
	want := []struct {
		kind tokKind
		text string
	}{
		{tokIdent, "path"},
		{tokVar, "Path"},
		{tokVar, "_x"},
		{tokIdent, "f_concat"},
		{tokIdent, "x-y"}, // hyphens allowed inside identifiers (node names)
		{tokIdent, "node1"},
	}
	if len(ts) != len(want) {
		t.Fatalf("tokens = %v", ts)
	}
	for i, w := range want {
		if ts[i].kind != w.kind || ts[i].text != w.text {
			t.Errorf("token %d = %v, want %v %q", i, ts[i], w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind tokKind
		text string
	}{
		{"0", tokInt, "0"},
		{"42", tokInt, "42"},
		{"2.5", tokFloat, "2.5"},
		{"1e3", tokFloat, "1e3"},
		{"1E-2", tokFloat, "1E-2"},
		{"1e+4", tokFloat, "1e+4"},
	}
	for _, c := range cases {
		ts := lexAll(t, c.src)
		if len(ts) != 1 || ts[0].kind != c.kind || ts[0].text != c.text {
			t.Errorf("lex %q = %v", c.src, ts)
		}
	}
	// "3." is an int followed by end-of-statement dot.
	ts := lexAll(t, "3.")
	if len(ts) != 2 || ts[0].kind != tokInt || ts[1].kind != tokDot {
		t.Errorf("lex 3. = %v", ts)
	}
	// "1e" with no exponent digits: int then identifier.
	ts = lexAll(t, "1e")
	if len(ts) != 2 || ts[0].kind != tokInt || ts[1].kind != tokIdent {
		t.Errorf("lex 1e = %v", ts)
	}
	// "2.5.3" is float then dot then int (statement boundary semantics).
	ts = lexAll(t, "2.5.3")
	if len(ts) != 3 || ts[0].kind != tokFloat || ts[1].kind != tokDot || ts[2].kind != tokInt {
		t.Errorf("lex 2.5.3 = %v", ts)
	}
}

func TestLexStringEscapes(t *testing.T) {
	ts := lexAll(t, `"a\nb\tc\"d\\e"`)
	if len(ts) != 1 || ts[0].kind != tokString {
		t.Fatalf("tokens = %v", ts)
	}
	if ts[0].text != "a\nb\tc\"d\\e" {
		t.Errorf("text = %q", ts[0].text)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		`"trailing \`,
		"?",
	}
	for _, src := range cases {
		l := newLexer(src)
		var err error
		for {
			var tok token
			tok, err = l.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	ts := lexAll(t, "a\n  bb\n    ccc")
	if ts[0].line != 1 || ts[0].col != 1 {
		t.Errorf("token 0 at %d:%d", ts[0].line, ts[0].col)
	}
	if ts[1].line != 2 || ts[1].col != 3 {
		t.Errorf("token 1 at %d:%d", ts[1].line, ts[1].col)
	}
	if ts[2].line != 3 || ts[2].col != 5 {
		t.Errorf("token 2 at %d:%d", ts[2].line, ts[2].col)
	}
}

func TestTokenString(t *testing.T) {
	if got := (token{kind: tokIdent, text: "foo"}).String(); !strings.Contains(got, "foo") {
		t.Errorf("token String = %q", got)
	}
	if got := (token{kind: tokImplies}).String(); got != ":-" {
		t.Errorf("implies String = %q", got)
	}
	if got := tokKind(200).String(); !strings.HasPrefix(got, "tok(") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestLexComments(t *testing.T) {
	ts := lexAll(t, "a // rest of line\nb /* multi\nline */ c")
	if len(ts) != 3 {
		t.Fatalf("tokens = %v", ts)
	}
	for i, want := range []string{"a", "b", "c"} {
		if ts[i].text != want {
			t.Errorf("token %d = %q", i, ts[i].text)
		}
	}
}
