// Package parser implements a hand-written lexer and recursive-descent
// parser for the NDlog surface syntax used in the paper:
//
//	materialize(link, infinity, infinity, keys(1,2)).
//	SP1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_concatPath(S, nil).
//	SP3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
//	link(a,b,5).
//	query shortestPath(@S,@D,P,C).
//	watch(path).
//
// Rule labels may be written "SP1 head :- body." or "SP1: head :- body.".
// Both "=" and ":=" denote assignment; equality comparison is "==".
// Constants beginning with a lower-case letter denote addresses; "nil"
// denotes the empty list.
//
// Parse returns a freshly allocated Program owning all of its nodes;
// nothing in the result aliases the source string, so callers may parse
// many programs from reused buffers. See internal/ast for the mutation
// rules downstream of parsing.
package parser

import (
	"fmt"
	"strconv"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// Parse parses a complete NDlog program.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.fill(); err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// ParseRule parses a single rule (ending with '.'), for tests and tools.
func ParseRule(src string) (*ast.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, fmt.Errorf("parser: expected exactly one rule, got %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

type parser struct {
	lex *lexer
	buf [3]token // lookahead window
	n   int      // tokens buffered
}

func (p *parser) fill() error {
	for p.n < len(p.buf) {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		p.buf[p.n] = t
		p.n++
	}
	return nil
}

func (p *parser) peek(i int) token { return p.buf[i] }

func (p *parser) advance() error {
	copy(p.buf[:], p.buf[1:])
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.buf[len(p.buf)-1] = t
	return nil
}

func (p *parser) take() (token, error) {
	t := p.buf[0]
	return t, p.advance()
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.buf[0]
	if t.kind != k {
		return t, p.errorf(t, "expected %s, found %s", k, t)
	}
	return t, p.advance()
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func pos(t token) ast.Pos { return ast.Pos{Line: t.line, Col: t.col} }

func (p *parser) parseProgram() (*ast.Program, error) {
	prog := &ast.Program{}
	for p.peek(0).kind != tokEOF {
		if err := p.parseStatement(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) parseStatement(prog *ast.Program) error {
	t := p.peek(0)
	if t.kind == tokIdent {
		switch t.text {
		case "materialize":
			if p.peek(1).kind == tokLParen {
				return p.parseMaterialize(prog)
			}
		case "watch":
			if p.peek(1).kind == tokLParen {
				return p.parseWatch(prog)
			}
		case "query":
			if p.peek(1).kind != tokLParen {
				return p.parseQuery(prog)
			}
		}
	}
	// "Query: atom." with capital Q parses as Var.
	if t.kind == tokVar && t.text == "Query" && p.peek(1).kind == tokColon {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.advance(); err != nil {
			return err
		}
		return p.finishQuery(prog)
	}
	return p.parseRuleOrFact(prog)
}

func (p *parser) parseMaterialize(prog *ast.Program) error {
	declPos := pos(p.peek(0))
	if err := p.advance(); err != nil { // "materialize"
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	lifetime, err := p.parseLifetimeOrSize()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	size, err := p.parseLifetimeOrSize()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	kw, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if kw.text != "keys" {
		return p.errorf(kw, "expected keys(...), found %q", kw.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var keys []int
	for p.peek(0).kind != tokRParen {
		nt, err := p.expect(tokInt)
		if err != nil {
			return err
		}
		k, err := strconv.Atoi(nt.text)
		if err != nil || k < 1 {
			return p.errorf(nt, "invalid key position %q (keys are 1-based)", nt.text)
		}
		keys = append(keys, k-1)
		if p.peek(0).kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	decl := &ast.TableDecl{Name: name.text, Keys: keys, Pos: declPos}
	decl.Lifetime = lifetime
	if size >= 0 {
		decl.MaxSize = int(size)
	}
	prog.Materialized = append(prog.Materialized, decl)
	return nil
}

// parseLifetimeOrSize parses a number or the keyword "infinity",
// returning -1 for infinity.
func (p *parser) parseLifetimeOrSize() (float64, error) {
	t := p.peek(0)
	switch t.kind {
	case tokIdent:
		if t.text == "infinity" {
			return -1, p.advance()
		}
		return 0, p.errorf(t, "expected number or infinity, found %q", t.text)
	case tokInt, tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, p.errorf(t, "bad number %q", t.text)
		}
		return v, p.advance()
	}
	return 0, p.errorf(t, "expected number or infinity, found %s", t)
}

func (p *parser) parseWatch(prog *ast.Program) error {
	if err := p.advance(); err != nil { // "watch"
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	prog.Watches = append(prog.Watches, name.text)
	return nil
}

func (p *parser) parseQuery(prog *ast.Program) error {
	if err := p.advance(); err != nil { // "query"
		return err
	}
	if p.peek(0).kind == tokColon {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return p.finishQuery(prog)
}

func (p *parser) finishQuery(prog *ast.Program) error {
	atom, err := p.parseAtom(true)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	if prog.Query != nil {
		return fmt.Errorf("parser: multiple query statements")
	}
	prog.Query = atom
	return nil
}

// parseRuleOrFact handles "[label[:]] head :- body." and ground facts
// "pred(const,...)".
func (p *parser) parseRuleOrFact(prog *ast.Program) error {
	label := ""
	t := p.peek(0)
	stmtPos := pos(t)
	if t.kind == tokIdent || t.kind == tokVar {
		next := p.peek(1)
		switch {
		case next.kind == tokColon:
			label = t.text
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.advance(); err != nil {
				return err
			}
		case next.kind == tokIdent && p.peek(2).kind == tokLParen,
			next.kind == tokHash:
			label = t.text
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	head, err := p.parseAtom(true)
	if err != nil {
		return err
	}
	switch p.peek(0).kind {
	case tokImplies:
		if err := p.advance(); err != nil {
			return err
		}
		rule := &ast.Rule{Label: label, Head: *head, Pos: stmtPos}
		for {
			term, err := p.parseTerm()
			if err != nil {
				return err
			}
			rule.Body = append(rule.Body, term)
			if p.peek(0).kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, rule)
		return nil
	case tokDot:
		if err := p.advance(); err != nil {
			return err
		}
		if label != "" {
			return fmt.Errorf("parser: fact %s must not carry a label %q", head.Pred, label)
		}
		tuple, err := atomToFact(head)
		if err != nil {
			return err
		}
		prog.Facts = append(prog.Facts, tuple)
		prog.FactPos = append(prog.FactPos, stmtPos)
		return nil
	}
	return p.errorf(p.peek(0), "expected :- or . after %s", head.Pred)
}

func atomToFact(a *ast.Atom) (val.Tuple, error) {
	fields := make([]val.Value, len(a.Args))
	for i, e := range a.Args {
		v, err := constEval(e)
		if err != nil {
			return val.Tuple{}, fmt.Errorf("fact %s: argument %d: %w", a.Pred, i+1, err)
		}
		fields[i] = v
	}
	return val.NewTuple(a.Pred, fields...), nil
}

func constEval(e ast.Expr) (val.Value, error) {
	switch x := e.(type) {
	case *ast.Const:
		return x.Value, nil
	case *ast.BinOp:
		l, err := constEval(x.L)
		if err != nil {
			return val.Nil, err
		}
		r, err := constEval(x.R)
		if err != nil {
			return val.Nil, err
		}
		if x.Op == ast.OpSub && l.Kind() == val.KindInt && r.Kind() == val.KindInt {
			return val.NewInt(l.Int() - r.Int()), nil
		}
		return val.Nil, fmt.Errorf("non-constant expression %s", e)
	}
	return val.Nil, fmt.Errorf("non-constant expression %s", e)
}

// parseAtom parses "[#]pred(arg, ...)". Head atoms (head=true) may contain
// aggregate arguments like "min<C>".
func (p *parser) parseAtom(head bool) (*ast.Atom, error) {
	link := false
	atomPos := pos(p.peek(0))
	if p.peek(0).kind == tokHash {
		link = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	atom := &ast.Atom{Pred: name.text, Link: link, Pos: atomPos}
	for p.peek(0).kind != tokRParen {
		arg, err := p.parseAtomArg(head)
		if err != nil {
			return nil, err
		}
		atom.Args = append(atom.Args, arg)
		if p.peek(0).kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return atom, nil
}

func (p *parser) parseAtomArg(head bool) (ast.Expr, error) {
	t := p.peek(0)
	// Aggregate argument: min<C>, max<C>, count<C>, sum<C>.
	if head && t.kind == tokIdent && p.peek(1).kind == tokLt {
		if f, ok := ast.AggFuncByName(t.text); ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil { // '<'
				return nil, err
			}
			v, err := p.expect(tokVar)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokGt); err != nil {
				return nil, err
			}
			return &ast.Agg{Func: f, Var: v.text, Pos: pos(t)}, nil
		}
	}
	return p.parseExpr()
}

// parseTerm parses one body term: atom, assignment, or selection.
func (p *parser) parseTerm() (ast.Term, error) {
	t := p.peek(0)
	if t.kind == tokHash {
		a, err := p.parseAtom(false)
		if err != nil {
			return nil, err
		}
		return a, nil
	}
	if t.kind == tokIdent && p.peek(1).kind == tokLParen {
		// Could be a predicate atom or a boolean function call used as a
		// selection (e.g. f_member(P,S) == false). Functions begin "f_".
		if !isFuncName(t.text) {
			a, err := p.parseAtom(false)
			if err != nil {
				return nil, err
			}
			return a, nil
		}
	}
	if t.kind == tokVar && p.peek(1).kind == tokAssign {
		name := t.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Assign{Var: name, Expr: e, Pos: pos(t)}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Select{Cond: e, Pos: pos(t)}, nil
}

func isFuncName(s string) bool { return len(s) > 2 && s[0] == 'f' && s[1] == '_' }

// Expression grammar (highest precedence last):
//
//	expr   := and ('||' and)*
//	and    := cmp ('&&' cmp)*
//	cmp    := add (relop add)?
//	add    := mul (('+'|'-') mul)*
//	mul    := unary (('*'|'/'|'%') unary)*
//	unary  := '-' unary | primary
func (p *parser) parseExpr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek(0).kind == tokOrOr {
		opPos := pos(p.peek(0))
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: ast.OpOr, L: l, R: r, Pos: opPos}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek(0).kind == tokAndAnd {
		opPos := pos(p.peek(0))
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: ast.OpAnd, L: l, R: r, Pos: opPos}
	}
	return l, nil
}

var relops = map[tokKind]ast.Op{
	tokEqEq: ast.OpEq, tokNe: ast.OpNe, tokLt: ast.OpLt,
	tokLe: ast.OpLe, tokGt: ast.OpGt, tokGe: ast.OpGe,
}

func (p *parser) parseCmp() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := relops[p.peek(0).kind]; ok {
		opPos := pos(p.peek(0))
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.BinOp{Op: op, L: l, R: r, Pos: opPos}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.Op
		switch p.peek(0).kind {
		case tokPlus:
			op = ast.OpAdd
		case tokMinus:
			op = ast.OpSub
		default:
			return l, nil
		}
		opPos := pos(p.peek(0))
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: op, L: l, R: r, Pos: opPos}
	}
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.Op
		switch p.peek(0).kind {
		case tokStar:
			op = ast.OpMul
		case tokSlash:
			op = ast.OpDiv
		case tokPercent:
			op = ast.OpMod
		default:
			return l, nil
		}
		opPos := pos(p.peek(0))
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: op, L: l, R: r, Pos: opPos}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.peek(0).kind == tokMinus {
		minusPos := pos(p.peek(0))
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*ast.Const); ok {
			switch c.Value.Kind() {
			case val.KindInt:
				return &ast.Const{Value: val.NewInt(-c.Value.Int()), Pos: minusPos}, nil
			case val.KindFloat:
				return &ast.Const{Value: val.NewFloat(-c.Value.Float()), Pos: minusPos}, nil
			}
		}
		return &ast.BinOp{Op: ast.OpSub, L: &ast.Const{Value: val.NewInt(0), Pos: minusPos}, R: e, Pos: minusPos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek(0)
	switch t.kind {
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf(t, "bad integer %q", t.text)
		}
		return &ast.Const{Value: val.NewInt(n), Pos: pos(t)}, p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf(t, "bad float %q", t.text)
		}
		return &ast.Const{Value: val.NewFloat(f), Pos: pos(t)}, p.advance()
	case tokString:
		return &ast.Const{Value: val.NewString(t.text), Pos: pos(t)}, p.advance()
	case tokVar:
		return &ast.Var{Name: t.text, Pos: pos(t)}, p.advance()
	case tokAt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n := p.peek(0)
		switch n.kind {
		case tokVar:
			return &ast.Var{Name: n.text, Loc: true, Pos: pos(t)}, p.advance()
		case tokIdent:
			return &ast.Const{Value: val.NewAddr(n.text), Pos: pos(t)}, p.advance()
		}
		return nil, p.errorf(n, "expected variable or address after @, found %s", n)
	case tokLBracket:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []ast.Expr
		for p.peek(0).kind != tokRBracket {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.peek(0).kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil { // ']'
			return nil, err
		}
		// A list of constants folds to a constant list; otherwise it
		// becomes an f_list call evaluated at runtime.
		vs := make([]val.Value, 0, len(elems))
		allConst := true
		for _, e := range elems {
			c, ok := e.(*ast.Const)
			if !ok {
				allConst = false
				break
			}
			vs = append(vs, c.Value)
		}
		if allConst {
			return &ast.Const{Value: val.NewList(vs...), Pos: pos(t)}, nil
		}
		return &ast.Call{Name: "f_list", Args: elems, Pos: pos(t)}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := t.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "nil":
			return &ast.Const{Value: val.NewList(), Pos: pos(t)}, nil
		case "true":
			return &ast.Const{Value: val.NewBool(true), Pos: pos(t)}, nil
		case "false":
			return &ast.Const{Value: val.NewBool(false), Pos: pos(t)}, nil
		case "infinity":
			return &ast.Const{Value: val.NewFloat(1e18), Pos: pos(t)}, nil
		}
		if p.peek(0).kind == tokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &ast.Call{Name: name, Pos: pos(t)}
			for p.peek(0).kind != tokRParen {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.peek(0).kind == tokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.advance(); err != nil { // ')'
				return nil, err
			}
			return call, nil
		}
		// Bare lower-case identifier: address constant (paper convention).
		return &ast.Const{Value: val.NewAddr(name), Pos: pos(t)}, nil
	}
	return nil, p.errorf(t, "unexpected token %s in expression", t)
}
