package planner

import (
	"ndlog/internal/ast"
)

// AggSelection describes an aggregate-selection opportunity
// (Section 5.1.1): a monotonic aggregate over SrcPred whose running
// state can prune SrcPred tuples that cannot contribute to the final
// answer. For the shortest-path query,
//
//	SP3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
//
// yields {SrcPred: path, AggPred: spCost, Func: min,
// GroupCols: [0 1], ValueCol: 4}: a new path tuple whose cost is not
// smaller than the current group minimum need not be stored or
// propagated.
type AggSelection struct {
	SrcPred   string
	AggPred   string
	Func      ast.AggFunc
	GroupCols []int // columns of SrcPred forming the aggregation group
	ValueCol  int   // column of SrcPred being aggregated
}

// Prunable reports whether the aggregate admits selection-based pruning
// (only min and max are monotonic in the required sense).
func (s AggSelection) Prunable() bool {
	return s.Func == ast.AggMin || s.Func == ast.AggMax
}

// DetectAggSelections finds aggregate-selection opportunities: rules with
// a single aggregate head argument over a single body predicate whose
// group-by variables map positionally onto body columns.
func DetectAggSelections(p *ast.Program) []AggSelection {
	var out []AggSelection
	for _, r := range p.Rules {
		sel, ok := detectOne(r)
		if ok {
			out = append(out, sel)
		}
	}
	return out
}

func detectOne(r *ast.Rule) (AggSelection, bool) {
	aggIdx := r.Head.AggregateIndex()
	if aggIdx < 0 {
		return AggSelection{}, false
	}
	atoms := r.Atoms()
	if len(atoms) != 1 {
		return AggSelection{}, false
	}
	src := atoms[0]
	// Map body variable name -> first column position.
	varCol := map[string]int{}
	for i, a := range src.Args {
		if v, ok := a.(*ast.Var); ok {
			if _, seen := varCol[v.Name]; !seen {
				varCol[v.Name] = i
			}
		}
	}
	sel := AggSelection{SrcPred: src.Pred, AggPred: r.Head.Pred}
	for i, a := range r.Head.Args {
		if i == aggIdx {
			agg := a.(*ast.Agg)
			sel.Func = agg.Func
			col, ok := varCol[agg.Var]
			if !ok {
				return AggSelection{}, false
			}
			sel.ValueCol = col
			continue
		}
		v, ok := a.(*ast.Var)
		if !ok {
			return AggSelection{}, false
		}
		col, ok := varCol[v.Name]
		if !ok {
			return AggSelection{}, false
		}
		sel.GroupCols = append(sel.GroupCols, col)
	}
	return sel, true
}
