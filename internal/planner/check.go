// Package planner performs semantic analysis and the query rewrites of
// the paper: NDlog validity checking (Definition 6), rule localization
// (Algorithm 2), magic-sets rewriting and predicate reordering
// (Section 5.1.2), and aggregate-selection detection (Section 5.1.1).
//
// Rewrites are pure with respect to their input: Localize and MagicSets
// clone the program and return a new one (unmodified rules are shared
// by pointer, never edited), so a caller can plan the same parsed
// program several ways. SlotMaps and analysis results are immutable
// once returned and safe to share across engine nodes.
package planner

import (
	"fmt"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// CheckError reports an NDlog validity violation.
type CheckError struct {
	Rule string // rule label or rendered rule
	Msg  string
}

func (e *CheckError) Error() string {
	if e.Rule == "" {
		return "ndlog: " + e.Msg
	}
	return fmt.Sprintf("ndlog: rule %s: %s", e.Rule, e.Msg)
}

func checkErrf(r *ast.Rule, format string, args ...any) error {
	name := ""
	if r != nil {
		name = r.Label
		if name == "" {
			name = r.Head.Pred
		}
	}
	return &CheckError{Rule: name, Msg: fmt.Sprintf(format, args...)}
}

// LinkRelations returns the set of relation names used as link literals
// ("#pred") anywhere in the program.
func LinkRelations(p *ast.Program) map[string]bool {
	links := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if a.Link {
				links[a.Pred] = true
			}
		}
	}
	return links
}

// IDBPredicates returns the set of predicates defined by rule heads
// (intensional relations).
func IDBPredicates(p *ast.Program) map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// Check validates the four NDlog constraints of Definition 6:
//
//  1. Location specificity: every predicate's first attribute is a
//     location specifier (an "@" variable or address constant).
//  2. Address type safety: a variable used as an address type is not
//     used elsewhere in the same rule as a non-address type.
//  3. Stored link relations: link relations never appear in rule heads.
//  4. Link restriction: every non-local rule has exactly one link
//     literal, and all other predicates are located at one of the link's
//     two endpoints.
//
// Check also enforces basic well-formedness: bounded variables in heads,
// at most one aggregate per head, and assignments binding fresh
// variables.
func Check(p *ast.Program) error {
	links := LinkRelations(p)
	for _, r := range p.Rules {
		if err := checkRule(r, links); err != nil {
			return err
		}
	}
	for _, f := range p.Facts {
		if len(f.Fields) == 0 || f.Fields[0].Kind() != val.KindAddr {
			return &CheckError{Msg: fmt.Sprintf("fact %s: first field must be an address", f)}
		}
	}
	if p.Query != nil {
		if len(p.Query.Args) == 0 {
			return &CheckError{Msg: "query predicate has no location specifier"}
		}
	}
	return nil
}

func checkRule(r *ast.Rule, links map[string]bool) error {
	atoms := append([]*ast.Atom{&r.Head}, r.Atoms()...)

	// (1) Location specificity.
	for _, a := range atoms {
		if len(a.Args) == 0 {
			return checkErrf(r, "predicate %s has no location specifier", a.Pred)
		}
		switch arg := a.Args[0].(type) {
		case *ast.Var:
			// Parsed "@X" has Loc=true; a bare variable in the first
			// position is rejected to keep data placement explicit.
			if !arg.Loc {
				return checkErrf(r, "predicate %s: first attribute %s must be a location specifier (@%s)", a.Pred, arg.Name, arg.Name)
			}
		case *ast.Const:
			if arg.Value.Kind() != val.KindAddr {
				return checkErrf(r, "predicate %s: first attribute must be an address, got %s", a.Pred, arg.Value.Kind())
			}
		default:
			return checkErrf(r, "predicate %s: first attribute must be a variable or address constant", a.Pred)
		}
	}

	// (2) Address type safety: across atom argument positions, a variable
	// is used consistently as address or non-address.
	addrVars := map[string]bool{}
	plainVars := map[string]bool{}
	for _, a := range atoms {
		for _, arg := range a.Args {
			v, ok := arg.(*ast.Var)
			if !ok {
				continue
			}
			if v.Loc {
				addrVars[v.Name] = true
			} else {
				plainVars[v.Name] = true
			}
		}
	}
	for name := range addrVars {
		if plainVars[name] {
			return checkErrf(r, "variable %s used both as address (@%s) and non-address type", name, name)
		}
	}

	// (3) Stored link relations.
	if links[r.Head.Pred] && len(r.Body) > 0 {
		return checkErrf(r, "link relation %s must not be derived (appears in rule head)", r.Head.Pred)
	}

	// (4) Link restriction.
	if !r.IsLocal() {
		var linkAtoms []*ast.Atom
		for _, a := range r.Atoms() {
			if a.Link {
				linkAtoms = append(linkAtoms, a)
			}
		}
		if len(linkAtoms) != 1 {
			return checkErrf(r, "non-local rule must have exactly one link literal, found %d", len(linkAtoms))
		}
		link := linkAtoms[0]
		if len(link.Args) < 2 {
			return checkErrf(r, "link literal #%s needs source and destination fields", link.Pred)
		}
		src, dst := link.LocVar(), ""
		if v, ok := link.Args[1].(*ast.Var); ok {
			dst = v.Name
		}
		if src == "" || dst == "" {
			return checkErrf(r, "link literal #%s endpoints must be variables", link.Pred)
		}
		for _, a := range atoms {
			if a == link {
				continue
			}
			loc := a.LocVar()
			if loc != src && loc != dst {
				return checkErrf(r, "predicate %s located at @%s, not at link endpoint @%s or @%s", a.Pred, loc, src, dst)
			}
		}
	}

	// Safety: head variables must be bound by body atoms or assignments.
	bound := map[string]bool{}
	for _, a := range r.Atoms() {
		for _, arg := range a.Args {
			if v, ok := arg.(*ast.Var); ok {
				bound[v.Name] = true
			}
		}
	}
	for _, t := range r.Body {
		asn, ok := t.(*ast.Assign)
		if !ok {
			continue
		}
		if bound[asn.Var] {
			return checkErrf(r, "assignment rebinds variable %s", asn.Var)
		}
		for name := range ast.Vars(asn.Expr) {
			if !bound[name] {
				return checkErrf(r, "assignment to %s uses unbound variable %s", asn.Var, name)
			}
		}
		bound[asn.Var] = true
	}
	for _, t := range r.Body {
		sel, ok := t.(*ast.Select)
		if !ok {
			continue
		}
		for name := range ast.Vars(sel.Cond) {
			if !bound[name] {
				return checkErrf(r, "selection uses unbound variable %s", name)
			}
		}
	}
	aggs := 0
	for _, arg := range r.Head.Args {
		switch x := arg.(type) {
		case *ast.Agg:
			aggs++
			if !bound[x.Var] {
				return checkErrf(r, "aggregate over unbound variable %s", x.Var)
			}
		default:
			for name := range ast.Vars(arg) {
				if !bound[name] {
					return checkErrf(r, "head variable %s is unbound", name)
				}
			}
		}
	}
	if aggs > 1 {
		return checkErrf(r, "at most one aggregate per head, found %d", aggs)
	}
	return nil
}
