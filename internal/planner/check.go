// Package planner performs semantic analysis and the query rewrites of
// the paper: NDlog validity checking (Definition 6), rule localization
// (Algorithm 2), magic-sets rewriting and predicate reordering
// (Section 5.1.2), and aggregate-selection detection (Section 5.1.1).
//
// Rewrites are pure with respect to their input: Localize and MagicSets
// clone the program and return a new one (unmodified rules are shared
// by pointer, never edited), so a caller can plan the same parsed
// program several ways. SlotMaps and analysis results are immutable
// once returned and safe to share across engine nodes.
package planner

import (
	"errors"
	"fmt"

	"ndlog/internal/analysis"
	"ndlog/internal/ast"
)

// CheckError reports an NDlog validity violation.
type CheckError struct {
	Rule string // rule label or rendered rule
	Msg  string
}

func (e *CheckError) Error() string {
	if e.Rule == "" {
		return "ndlog: " + e.Msg
	}
	return fmt.Sprintf("ndlog: rule %s: %s", e.Rule, e.Msg)
}

func checkErrf(r *ast.Rule, format string, args ...any) error {
	name := ""
	if r != nil {
		name = r.Label
		if name == "" {
			name = r.Head.Pred
		}
	}
	return &CheckError{Rule: name, Msg: fmt.Sprintf(format, args...)}
}

// LinkRelations returns the set of relation names used as link literals
// ("#pred") anywhere in the program.
func LinkRelations(p *ast.Program) map[string]bool {
	links := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if a.Link {
				links[a.Pred] = true
			}
		}
	}
	return links
}

// IDBPredicates returns the set of predicates defined by rule heads
// (intensional relations).
func IDBPredicates(p *ast.Program) map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// Check validates the four NDlog constraints of Definition 6 plus the
// planner's well-formedness rules (bound variables, fresh assignments,
// at most one aggregate per head). It is a compatibility shim over
// analysis.Definition6: every violation in the program is collected and
// the result is an errors.Join of one *CheckError per violation, so
// errors.As still surfaces a *CheckError and error strings still
// contain each individual message. Callers wanting positions, warnings,
// or the stricter whole-program passes should use analysis.Analyze.
func Check(p *ast.Program) error {
	diags := analysis.Definition6(p)
	var errs []error
	for _, d := range diags {
		if d.Severity != analysis.Error {
			continue
		}
		errs = append(errs, &CheckError{Rule: d.Rule, Msg: d.Msg})
	}
	return errors.Join(errs...)
}
