package planner

import (
	"fmt"
	"sort"

	"ndlog/internal/ast"
)

// Localize applies the rule-localization rewrite (Algorithm 2 of the
// paper) to every non-local rule whose body spans both endpoints of its
// link literal. The result is an equivalent program in which every rule
// body is evaluable at a single node, and all communication consists of
// shipping derived tuples across link edges (Claim 1).
//
// For a rule
//
//	h(@L,...) :- #link(@S,@D,...), p1(@S,...), ..., pi(@S,...),
//	             pi+1(@D,...), ..., pn(@D,...), <assigns/selects>
//
// the rewrite produces
//
//	hD(@D,@S,V...) :- #link(@S,@D,...), p1(@S,...), ..., pi(@S,...).
//	h(@L,...)      :- hD(@D,@S,V...), pi+1(@D,...), ..., pn(@D,...),
//	                  <assigns/selects>.
//
// where V... are the source-side bindings needed downstream. When @L=@S
// the second rule evaluates at @D and its head tuple travels back across
// the (bidirectional) link to @S. Algorithm 2 expresses that return trip
// with an explicit reverse #link(@D,@S) literal; we omit the literal —
// the engine routes head tuples to their location specifier directly,
// and the physical message still traverses the same (bidirectional)
// link — so that directed link relations keep their semantics. The
// localized program is therefore internal: it satisfies single-site
// bodies (EvalSite) but its back-propagating rules are not re-checked
// against Definition 5.
func Localize(p *ast.Program) (*ast.Program, error) {
	out := p.Clone()
	var rules []*ast.Rule
	gen := 0
	for _, r := range out.Rules {
		if bodySingleSite(r) {
			rules = append(rules, r)
			continue
		}
		split, err := localizeRule(r, &gen)
		if err != nil {
			return nil, err
		}
		rules = append(rules, split...)
	}
	out.Rules = rules
	return out, nil
}

// bodySingleSite reports whether all body atoms share one location
// variable, i.e. the body is already evaluable at a single node.
func bodySingleSite(r *ast.Rule) bool {
	atoms := r.Atoms()
	if len(atoms) == 0 {
		return true
	}
	loc := atoms[0].LocVar()
	for _, a := range atoms[1:] {
		if a.LocVar() != loc {
			return false
		}
	}
	return true
}

func localizeRule(r *ast.Rule, gen *int) ([]*ast.Rule, error) {
	link := r.LinkAtom()
	if link == nil {
		return nil, checkErrf(r, "cannot localize: body spans multiple locations without a link literal")
	}
	srcVar := link.LocVar()
	dstVar := ""
	if v, ok := link.Args[1].(*ast.Var); ok {
		dstVar = v.Name
	}
	if srcVar == "" || dstVar == "" {
		return nil, checkErrf(r, "cannot localize: link endpoints must be variables")
	}

	var srcAtoms, dstAtoms []*ast.Atom
	for _, a := range r.Atoms() {
		if a == link {
			continue
		}
		switch a.LocVar() {
		case srcVar:
			srcAtoms = append(srcAtoms, a)
		case dstVar:
			dstAtoms = append(dstAtoms, a)
		default:
			return nil, checkErrf(r, "atom %s not at a link endpoint", a.Pred)
		}
	}

	// Source-side bindings: variables bound by the link or source atoms.
	srcBound := atomVars(append([]*ast.Atom{link}, srcAtoms...))

	// Variables needed downstream of the shipping step.
	needed := map[string]bool{}
	for _, a := range dstAtoms {
		mergeVars(needed, atomVars([]*ast.Atom{a}))
	}
	for _, t := range r.Body {
		switch x := t.(type) {
		case *ast.Assign:
			mergeVars(needed, ast.Vars(x.Expr))
		case *ast.Select:
			mergeVars(needed, ast.Vars(x.Cond))
		}
	}
	for _, arg := range r.Head.Args {
		mergeVars(needed, ast.Vars(arg))
	}

	carry := []string{}
	for name := range needed {
		if srcBound[name] && name != srcVar && name != dstVar {
			carry = append(carry, name)
		}
	}
	sort.Strings(carry)

	// Which variables are address-typed in the original rule (written @X
	// in some atom position)? Preserve that marking in generated atoms.
	isAddr := addrVarSet(r)

	*gen++
	shipPred := fmt.Sprintf("%s_d%d", r.Head.Pred, *gen)
	mkVar := func(name string) *ast.Var {
		return &ast.Var{Name: name, Loc: isAddr[name]}
	}

	shipArgs := []ast.Expr{
		&ast.Var{Name: dstVar, Loc: true},
		&ast.Var{Name: srcVar, Loc: true},
	}
	for _, name := range carry {
		shipArgs = append(shipArgs, mkVar(name))
	}

	label := r.Label
	if label == "" {
		label = r.Head.Pred
	}
	shipRule := &ast.Rule{
		Label: label + "a",
		Head:  ast.Atom{Pred: shipPred, Args: shipArgs},
	}
	shipRule.Body = append(shipRule.Body, cloneAtomExpr(link))
	for _, a := range srcAtoms {
		shipRule.Body = append(shipRule.Body, cloneAtomExpr(a))
	}

	finalRule := &ast.Rule{
		Label: label + "b",
		Head:  *cloneAtomExpr(&r.Head),
	}
	shipRef := &ast.Atom{Pred: shipPred, Args: cloneExprs(shipArgs)}
	finalRule.Body = append(finalRule.Body, shipRef)
	for _, a := range dstAtoms {
		finalRule.Body = append(finalRule.Body, cloneAtomExpr(a))
	}
	for _, t := range r.Body {
		switch t.(type) {
		case *ast.Assign, *ast.Select:
			finalRule.Body = append(finalRule.Body, cloneTermExpr(t))
		}
	}
	return []*ast.Rule{shipRule, finalRule}, nil
}

func atomVars(atoms []*ast.Atom) map[string]bool {
	out := map[string]bool{}
	for _, a := range atoms {
		for _, arg := range a.Args {
			mergeVars(out, ast.Vars(arg))
		}
	}
	return out
}

func mergeVars(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

func addrVarSet(r *ast.Rule) map[string]bool {
	out := map[string]bool{}
	atoms := append([]*ast.Atom{&r.Head}, r.Atoms()...)
	for _, a := range atoms {
		for _, arg := range a.Args {
			if v, ok := arg.(*ast.Var); ok && v.Loc {
				out[v.Name] = true
			}
		}
	}
	return out
}

func cloneAtomExpr(a *ast.Atom) *ast.Atom {
	rr := &ast.Rule{Head: *a}
	return &rr.Clone().Head
}

func cloneExprs(es []ast.Expr) []ast.Expr {
	a := &ast.Atom{Args: es}
	return cloneAtomExpr(a).Args
}

func cloneTermExpr(t ast.Term) ast.Term {
	r := &ast.Rule{Body: []ast.Term{t}}
	return r.Clone().Body[0]
}

// EvalSite returns the location variable at which a (localized) rule's
// body executes, and whether the head is shipped elsewhere. It errors if
// the body is not single-site (callers must Localize first).
func EvalSite(r *ast.Rule) (bodyLoc string, remoteHead bool, err error) {
	atoms := r.Atoms()
	if len(atoms) == 0 {
		return r.Head.LocVar(), false, nil
	}
	bodyLoc = atoms[0].LocVar()
	for _, a := range atoms[1:] {
		if a.LocVar() != bodyLoc {
			return "", false, checkErrf(r, "body not single-site; localize first")
		}
	}
	return bodyLoc, r.Head.LocVar() != bodyLoc, nil
}
