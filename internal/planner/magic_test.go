package planner

import (
	"strings"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

const reachSrc = `
r1 reach(@S, @D) :- edge(@S, @D).
r2 reach(@S, @D) :- edge(@S, @Z), reach(@Z, @D).
`

func TestMagicSetsReachable(t *testing.T) {
	p := parse(t, reachSrc)
	q := &ast.Atom{Pred: "reach", Args: []ast.Expr{
		&ast.Const{Value: val.NewAddr("a")},
		&ast.Var{Name: "D"},
	}}
	mp, err := MagicSets(p, q)
	if err != nil {
		t.Fatal(err)
	}
	s := mp.String()
	// Both rules guarded by the magic predicate.
	if got := strings.Count(s, "magic_reach_bf("); got < 3 {
		t.Errorf("expected >=3 magic_reach_bf references, got %d:\n%s", got, s)
	}
	// Seed fact present.
	found := false
	for _, f := range mp.Facts {
		if f.Pred == "magic_reach_bf" && f.Fields[0].Addr() == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing seed fact:\n%s", s)
	}
	// The recursive rule must generate a magic rule passing bindings
	// through the edge atom.
	var magicRule *ast.Rule
	for _, r := range mp.Rules {
		if r.Head.Pred == "magic_reach_bf" {
			magicRule = r
		}
	}
	if magicRule == nil {
		t.Fatalf("no magic rule:\n%s", s)
	}
	preds := []string{}
	for _, a := range magicRule.Atoms() {
		preds = append(preds, a.Pred)
	}
	if len(preds) != 2 || preds[0] != "magic_reach_bf" || preds[1] != "edge" {
		t.Errorf("magic rule body = %v: %s", preds, magicRule)
	}
}

func TestMagicSetsNoBindings(t *testing.T) {
	p := parse(t, reachSrc)
	q := &ast.Atom{Pred: "reach", Args: []ast.Expr{
		&ast.Var{Name: "S"}, &ast.Var{Name: "D"},
	}}
	mp, err := MagicSets(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(mp.String(), "magic_") {
		t.Errorf("free query must be a no-op:\n%s", mp)
	}
}

func TestMagicSetsUnknownPred(t *testing.T) {
	p := parse(t, reachSrc)
	q := &ast.Atom{Pred: "nosuch", Args: []ast.Expr{&ast.Const{Value: val.NewAddr("a")}}}
	if _, err := MagicSets(p, q); err == nil {
		t.Error("unknown predicate accepted")
	}
}

func TestMagicSetsFreeLocationRejected(t *testing.T) {
	// Binding only the second argument leaves the location free, which
	// would break location specificity.
	p := parse(t, reachSrc)
	q := &ast.Atom{Pred: "reach", Args: []ast.Expr{
		&ast.Var{Name: "S"},
		&ast.Const{Value: val.NewAddr("d")},
	}}
	if _, err := MagicSets(p, q); err == nil {
		t.Error("free-location adornment accepted")
	}
}

func TestMagicSetsConflictingAdornments(t *testing.T) {
	p := parse(t, `
r1 a(@S, @D) :- b(@S, @D).
r2 top(@S) :- a(@S, @D), seed(@S).
r3 top(@S) :- seed2(@S, @D), a(@D, @S2), S2 == S.
`)
	// From top^b: r2 calls a with bf; r3 calls a with bf too (D bound by
	// seed2)? D is bound after seed2, S2 free -> bf. Same adornment, OK.
	q := &ast.Atom{Pred: "top", Args: []ast.Expr{&ast.Const{Value: val.NewAddr("x")}}}
	if _, err := MagicSets(p, q); err != nil {
		t.Fatalf("same adornment should be fine: %v", err)
	}
	// Now force a genuine conflict: a called once as bf and once as bb.
	p2 := parse(t, `
r1 a(@S, @D) :- b(@S, @D).
r2 top(@S) :- a(@S, @D), seed(@S).
r3 top(@S) :- a(@S, @s99), seed(@S).
`)
	if _, err := MagicSets(p2, q); err == nil {
		t.Error("conflicting adornments accepted")
	}
}

func TestMagicSetsShortestPathStyle(t *testing.T) {
	// Destination-bound magic on the paper's SP program (Section 5.1.2,
	// SP1-D): pathDst computed top-down from a bound source.
	p := parse(t, `
SP1 pathDst(@D,@S,@D,C) :- #link(@S,@D,C).
SP2 pathDst(@D,@S,@Z1,C) :- pathDst(@Z,@S,@Z1,C1), #link(@Z,@D,C2), C := C1 + C2.
`)
	q := &ast.Atom{Pred: "pathDst", Args: []ast.Expr{
		&ast.Var{Name: "D", Loc: true},
		&ast.Const{Value: val.NewAddr("src7")},
		&ast.Var{Name: "Z"},
		&ast.Var{Name: "C"},
	}}
	// Location (first arg) free, S bound -> rejected by NDlog constraint.
	if _, err := MagicSets(p, q); err == nil {
		t.Error("expected rejection: location argument unbound")
	}
	// Binding the location works.
	q2 := &ast.Atom{Pred: "pathDst", Args: []ast.Expr{
		&ast.Const{Value: val.NewAddr("dst3")},
		&ast.Var{Name: "S"},
		&ast.Var{Name: "Z"},
		&ast.Var{Name: "C"},
	}}
	mp, err := MagicSets(p, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mp.String(), "magic_pathDst_bfff(") {
		t.Errorf("missing adorned magic predicate:\n%s", mp)
	}
}
