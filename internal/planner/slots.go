package planner

import "ndlog/internal/ast"

// SlotMap is the compile-time numbering of one rule's variables: every
// variable name maps to a dense slot index, assigned in first-occurrence
// order scanning the body (atoms, assignments, selections) and then the
// head. The engine evaluates rules over a slot-addressed environment
// ([]val.Value plus a bound bitset) instead of a string-keyed map, so
// variable lookup on the join hot path is a slice index, not a hash.
type SlotMap struct {
	names []string
	index map[string]int
}

// AssignSlots numbers every variable of r. Rules are numbered after
// localization, so the map covers exactly the variables one strand of
// the rule can bind or read.
func AssignSlots(r *ast.Rule) *SlotMap {
	m := &SlotMap{index: map[string]int{}}
	for _, t := range r.Body {
		switch x := t.(type) {
		case *ast.Atom:
			for _, a := range x.Args {
				m.addExpr(a)
			}
		case *ast.Assign:
			// Operands first (Check guarantees they are already bound),
			// then the freshly bound target.
			m.addExpr(x.Expr)
			m.add(x.Var)
		case *ast.Select:
			m.addExpr(x.Cond)
		}
	}
	for _, a := range r.Head.Args {
		m.addExpr(a)
	}
	return m
}

func (m *SlotMap) add(name string) {
	if _, ok := m.index[name]; !ok {
		m.index[name] = len(m.names)
		m.names = append(m.names, name)
	}
}

// addExpr walks e in deterministic (left-to-right) order; ast.Vars is
// unsuitable here because map iteration would scramble slot numbers.
func (m *SlotMap) addExpr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Var:
		m.add(x.Name)
	case *ast.BinOp:
		m.addExpr(x.L)
		m.addExpr(x.R)
	case *ast.Call:
		for _, a := range x.Args {
			m.addExpr(a)
		}
	case *ast.Agg:
		m.add(x.Var)
	}
}

// Slot resolves a variable name to its slot index.
func (m *SlotMap) Slot(name string) (int, bool) {
	i, ok := m.index[name]
	return i, ok
}

// Len returns the number of slots.
func (m *SlotMap) Len() int { return len(m.names) }

// Name returns the variable name of a slot (for error messages).
func (m *SlotMap) Name(slot int) string { return m.names[slot] }
