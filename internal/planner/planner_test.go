package planner

import (
	"strings"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

const spSrc = `
materialize(link, infinity, infinity, keys(1,2)).
SP1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_concatPath(S, [D]).
SP2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
	C := C1 + C2, P := f_concatPath(S, P2), f_member(P2, S) == false.
SP3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
SP4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).
query shortestPath(@S,@D,P,C).
`

func TestCheckAcceptsShortestPath(t *testing.T) {
	if err := Check(parse(t, spSrc)); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no location specifier", `r p(X) :- q(@X, X).`, "location specifier"},
		{"plain first attribute", `r p(@S) :- q(S).`, "location specifier"},
		{"address type safety", `r p(@S, D) :- q(@S, @D), r2(@S, D).`, "address"},
		{"derived link", `r link(@S,@D) :- #link(@S,@Z), hop(@Z,@D).`, "link relation"},
		{"two links", `r p(@S) :- #link(@S,@D), #link(@S,@Z), q(@D), w(@Z).`, "exactly one link"},
		{"no link non-local", `r p(@S) :- q(@S), w(@D).`, "exactly one link"},
		{"off-link atom", `r p(@S) :- #link(@S,@D), q(@Z).`, "not at link endpoint"},
		{"unbound head var", `r p(@S, X) :- q(@S).`, "unbound"},
		{"unbound select", `r p(@S) :- q(@S), X < 3.`, "unbound"},
		{"unbound assign input", `r p(@S, Y) :- q(@S), Y := X + 1.`, "unbound"},
		{"assign rebind", `r p(@S, X) :- q(@S, X), X := 3.`, "rebinds"},
		{"agg over unbound", `r p(@S, min<C>) :- q(@S).`, "unbound"},
		{"two aggregates", `r p(@S, min<C>, max<C>) :- q(@S, C).`, "one aggregate"},
		{"nullary predicate", `r p(@S) :- q(@S), z().`, "location"},
		{"link endpoints const", `r p(@S) :- #link(@S, @b, C), q(@b2).`, "endpoint"},
	}
	for _, c := range cases {
		err := Check(parse(t, c.src))
		if err == nil {
			t.Errorf("%s: Check accepted %q", c.name, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCheckBadFactAndQuery(t *testing.T) {
	if err := Check(parse(t, `p(1, a).`)); err == nil {
		t.Error("fact with non-address first field accepted")
	}
	prog := parse(t, `r p(@S) :- q(@S).`)
	prog.Query = &ast.Atom{Pred: "p"}
	if err := Check(prog); err == nil {
		t.Error("nullary query accepted")
	}
}

func TestLinkRelationsAndIDB(t *testing.T) {
	p := parse(t, spSrc)
	links := LinkRelations(p)
	if !links["link"] || len(links) != 1 {
		t.Errorf("links = %v", links)
	}
	idb := IDBPredicates(p)
	for _, want := range []string{"path", "spCost", "shortestPath"} {
		if !idb[want] {
			t.Errorf("idb missing %s", want)
		}
	}
	if idb["link"] {
		t.Error("link should not be IDB")
	}
}

func TestLocalizeShortestPath(t *testing.T) {
	p := parse(t, spSrc)
	lp, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	// SP2 splits into two rules; others survive.
	if len(lp.Rules) != 5 {
		t.Fatalf("rules after localization = %d, want 5:\n%s", len(lp.Rules), lp)
	}
	for _, r := range lp.Rules {
		if !bodySingleSite(r) {
			t.Errorf("rule %s still multi-site", r)
		}
	}
	// The shipped predicate must carry C1 (needed by the assign) and be
	// located at the link destination.
	var ship, final *ast.Rule
	for _, r := range lp.Rules {
		switch r.Label {
		case "SP2a":
			ship = r
		case "SP2b":
			final = r
		}
	}
	if ship == nil || final == nil {
		t.Fatalf("missing split rules:\n%s", lp)
	}
	if ship.Head.LocVar() != "Z" {
		t.Errorf("ship head located at @%s, want @Z", ship.Head.LocVar())
	}
	if la := ship.LinkAtom(); la == nil {
		t.Error("ship rule lost its link literal")
	}
	carried := atomVars([]*ast.Atom{&ship.Head})
	for _, want := range []string{"S", "Z", "C1"} {
		if !carried[want] {
			t.Errorf("ship head missing variable %s: %s", want, ship)
		}
	}
	// The final rule evaluates at @Z and ships path tuples back to @S.
	loc, remote, err := EvalSite(final)
	if err != nil {
		t.Fatal(err)
	}
	if loc != "Z" || !remote {
		t.Errorf("final rule site = %s remote=%v, want Z/true", loc, remote)
	}
	// Assignments and selections must survive in the final rule.
	var assigns, selects int
	for _, term := range final.Body {
		switch term.(type) {
		case *ast.Assign:
			assigns++
		case *ast.Select:
			selects++
		}
	}
	if assigns != 2 || selects != 1 {
		t.Errorf("final rule assigns=%d selects=%d: %s", assigns, selects, final)
	}
	// The final rule must not join a reverse link literal: the return
	// trip to @S is routed directly (see Localize doc comment), so the
	// only atoms are the ship predicate and the destination-side ones.
	for _, a := range final.Atoms() {
		if a.Link {
			t.Errorf("final rule should not contain a link literal: %s", final)
		}
	}
}

func TestLocalizeKeepsLocalRules(t *testing.T) {
	p := parse(t, `
r1 p(@S, C) :- q(@S, C).
r2 p(@D, C) :- #link(@S,@D,C), q(@S, C).
`)
	lp, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	// r1 is local; r2's body is all at @S (single-site) even though the
	// head ships to @D — neither needs splitting.
	if len(lp.Rules) != 2 {
		t.Fatalf("rules = %d, want 2:\n%s", len(lp.Rules), lp)
	}
}

func TestLocalizeBothSidesAndHeadAtSource(t *testing.T) {
	// Source-side atom q, dest-side atom w, head back at source.
	p := parse(t, `
r p(@S, X, Y) :- #link(@S,@D,C), q(@S, X), w(@D, Y), X < Y.
`)
	lp, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Rules) != 2 {
		t.Fatalf("rules = %d:\n%s", len(lp.Rules), lp)
	}
	ship, final := lp.Rules[0], lp.Rules[1]
	// Ship rule body: link + q at @S.
	if got := len(ship.Atoms()); got != 2 {
		t.Errorf("ship atoms = %d: %s", got, ship)
	}
	carried := atomVars([]*ast.Atom{&ship.Head})
	if !carried["X"] {
		t.Errorf("ship must carry X: %s", ship)
	}
	if carried["C"] {
		t.Errorf("ship should not carry unused C: %s", ship)
	}
	loc, remote, err := EvalSite(final)
	if err != nil {
		t.Fatal(err)
	}
	if loc != "D" || !remote {
		t.Errorf("final site = %s remote=%v", loc, remote)
	}
	if final.Head.LocVar() != "S" {
		t.Errorf("final head at @%s, want @S", final.Head.LocVar())
	}
}

func TestLocalizeErrors(t *testing.T) {
	// Multi-site body with no link literal cannot be localized. (Check
	// would reject it too; Localize must not panic.)
	p := parse(t, `r p(@S) :- q(@S), w(@D).`)
	if _, err := Localize(p); err == nil {
		t.Error("expected error for link-free multi-site rule")
	}
}

func TestEvalSiteErrors(t *testing.T) {
	p := parse(t, `r p(@S) :- q(@S), w(@D).`)
	if _, _, err := EvalSite(p.Rules[0]); err == nil {
		t.Error("EvalSite should reject multi-site body")
	}
	// Body-free rule (facts-only head) uses the head location.
	p2 := parse(t, `r p(@S, C) :- q(@S, C).`)
	loc, remote, err := EvalSite(p2.Rules[0])
	if err != nil || loc != "S" || remote {
		t.Errorf("EvalSite = %s %v %v", loc, remote, err)
	}
}

func TestDetectAggSelections(t *testing.T) {
	p := parse(t, spSrc)
	sels := DetectAggSelections(p)
	if len(sels) != 1 {
		t.Fatalf("selections = %v", sels)
	}
	s := sels[0]
	if s.SrcPred != "path" || s.AggPred != "spCost" || s.Func != ast.AggMin {
		t.Errorf("selection = %+v", s)
	}
	if len(s.GroupCols) != 2 || s.GroupCols[0] != 0 || s.GroupCols[1] != 1 {
		t.Errorf("group cols = %v", s.GroupCols)
	}
	if s.ValueCol != 4 {
		t.Errorf("value col = %d", s.ValueCol)
	}
	if !s.Prunable() {
		t.Error("min selection should be prunable")
	}
}

func TestDetectAggSelectionsNegative(t *testing.T) {
	// count aggregates are detected but not prunable.
	p := parse(t, `r c(@S, count<D>) :- path(@S, D).`)
	sels := DetectAggSelections(p)
	if len(sels) != 1 || sels[0].Prunable() {
		t.Errorf("count selection = %v", sels)
	}
	// Head group var not present in body: not detectable.
	p2 := parse(t, `r c(@S, X, min<D>) :- path(@S, D), X := D + 1.`)
	if sels := DetectAggSelections(p2); len(sels) != 0 {
		t.Errorf("undetectable selection reported: %v", sels)
	}
}

func TestReorder(t *testing.T) {
	p := parse(t, `r p(@S) :- q(@S), w(@S).`)
	r := p.Rules[0]
	if err := Reorder(r, 0, 1); err != nil {
		t.Fatal(err)
	}
	if r.Atoms()[0].Pred != "w" {
		t.Errorf("reorder failed: %s", r)
	}
	if err := Reorder(r, 0, 5); err == nil {
		t.Error("out-of-range reorder accepted")
	}
}
