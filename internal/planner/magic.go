package planner

import (
	"fmt"
	"strings"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// MagicSets applies the magic-sets rewrite (Bancilhon et al., used in
// Section 5.1.2 of the paper) to limit evaluation to the portion of the
// data relevant to a query with constant bindings.
//
// The query atom carries the binding pattern: constant arguments are
// bound ("b"), variables are free ("f"). For every reachable IDB
// predicate with at least one bound argument, the rewrite:
//
//   - adds a magic predicate magic_p_<adornment>(bound args),
//   - guards each rule defining p with the magic predicate, and
//   - generates magic rules that push bindings sideways left-to-right
//     through rule bodies,
//   - seeds the magic table with the query constants.
//
// Restrictions (sufficient for the paper's workloads): one adornment per
// predicate (a second distinct adornment is an error), no negation, and
// a predicate's location argument must be bound whenever any argument is
// bound — otherwise the rewritten program would not be location-specific
// NDlog. The distributed experiments in Section 6.3 use the hand-written
// magic program from the paper (SP1-SD..SP4-SD); this transform serves
// the centralized engine and tooling.
func MagicSets(p *ast.Program, query *ast.Atom) (*ast.Program, error) {
	idb := IDBPredicates(p)
	if !idb[query.Pred] {
		return nil, fmt.Errorf("magic: query predicate %s has no rules", query.Pred)
	}
	qa := adornment(query.Args, map[string]bool{})
	if !strings.Contains(qa, "b") {
		// Nothing bound: rewrite is a no-op.
		return p.Clone(), nil
	}

	out := p.Clone()
	adorned := map[string]string{} // pred -> adornment
	queue := []string{query.Pred}
	adorned[query.Pred] = qa

	var magicRules []*ast.Rule
	guarded := map[string]bool{}

	for len(queue) > 0 {
		pred := queue[0]
		queue = queue[1:]
		ad := adorned[pred]
		if ad[0] != 'b' {
			return nil, fmt.Errorf("magic: predicate %s: location argument must be bound (adornment %s)", pred, ad)
		}
		for _, r := range out.Rules {
			if r.Head.Pred != pred || guarded[ruleKey(r)] {
				continue
			}
			guarded[ruleKey(r)] = true
			mags, err := rewriteRule(r, ad, idb, adorned, &queue)
			if err != nil {
				return nil, err
			}
			magicRules = append(magicRules, mags...)
		}
	}
	out.Rules = append(out.Rules, magicRules...)

	// Seed the magic table with the query constants.
	seedArgs := boundArgs(query.Args, qa)
	seed, err := constAtomToFact(magicName(query.Pred, qa), seedArgs)
	if err != nil {
		return nil, fmt.Errorf("magic: query seed: %w", err)
	}
	out.Facts = append(out.Facts, seed)
	return out, nil
}

func ruleKey(r *ast.Rule) string { return r.String() }

// adornment computes the b/f pattern of an atom's arguments given the
// set of currently bound variables.
func adornment(args []ast.Expr, bound map[string]bool) string {
	var b strings.Builder
	for _, a := range args {
		switch x := a.(type) {
		case *ast.Const:
			b.WriteByte('b')
		case *ast.Var:
			if bound[x.Name] {
				b.WriteByte('b')
			} else {
				b.WriteByte('f')
			}
		case *ast.Agg:
			b.WriteByte('f')
		default:
			// Computed argument: bound iff all its variables are bound.
			all := true
			for name := range ast.Vars(a) {
				if !bound[name] {
					all = false
					break
				}
			}
			if all {
				b.WriteByte('b')
			} else {
				b.WriteByte('f')
			}
		}
	}
	return b.String()
}

func magicName(pred, ad string) string { return "magic_" + pred + "_" + ad }

func boundArgs(args []ast.Expr, ad string) []ast.Expr {
	var out []ast.Expr
	for i, a := range args {
		if i < len(ad) && ad[i] == 'b' {
			out = append(out, a)
		}
	}
	return out
}

// rewriteRule guards r with its magic predicate and emits magic rules
// for the IDB atoms in its body (left-to-right sideways information
// passing). It mutates r in place (r belongs to a cloned program).
func rewriteRule(r *ast.Rule, ad string, idb map[string]bool, adorned map[string]string, queue *[]string) ([]*ast.Rule, error) {
	headBound := map[string]bool{}
	for i, a := range r.Head.Args {
		if i < len(ad) && ad[i] == 'b' {
			mergeVars(headBound, ast.Vars(a))
		}
	}
	magicGuard := &ast.Atom{
		Pred: magicName(r.Head.Pred, ad),
		Args: cloneExprs(boundArgs(r.Head.Args, ad)),
	}

	bound := map[string]bool{}
	mergeVars(bound, headBound)

	var magicRules []*ast.Rule
	var prefix []ast.Term // terms preceding the current atom
	for _, t := range r.Body {
		switch x := t.(type) {
		case *ast.Atom:
			if idb[x.Pred] {
				sub := adornment(x.Args, bound)
				if strings.Contains(sub, "b") {
					if prev, ok := adorned[x.Pred]; ok && prev != sub {
						return nil, fmt.Errorf("magic: predicate %s reached with adornments %s and %s; one adornment supported", x.Pred, prev, sub)
					}
					if _, ok := adorned[x.Pred]; !ok {
						adorned[x.Pred] = sub
						*queue = append(*queue, x.Pred)
					}
					mr := &ast.Rule{
						Label: "m_" + r.Label + "_" + x.Pred,
						Head: ast.Atom{
							Pred: magicName(x.Pred, sub),
							Args: cloneExprs(boundArgs(x.Args, sub)),
						},
					}
					mr.Body = append(mr.Body, cloneTermExpr(magicGuard))
					for _, pt := range prefix {
						mr.Body = append(mr.Body, cloneTermExpr(pt))
					}
					magicRules = append(magicRules, mr)
				}
			}
			mergeVars(bound, atomVars([]*ast.Atom{x}))
		case *ast.Assign:
			bound[x.Var] = true
		}
		prefix = append(prefix, t)
	}

	// Guard the original rule.
	r.Body = append([]ast.Term{magicGuard}, r.Body...)
	return magicRules, nil
}

// constAtomToFact converts an all-constant argument list into a fact.
func constAtomToFact(pred string, args []ast.Expr) (val.Tuple, error) {
	fields := make([]val.Value, 0, len(args))
	for _, a := range args {
		c, ok := a.(*ast.Const)
		if !ok {
			return val.Tuple{}, fmt.Errorf("argument %s is not a constant", a)
		}
		fields = append(fields, c.Value)
	}
	return val.NewTuple(pred, fields...), nil
}

// Reorder swaps two body terms of a rule in place. Predicate reordering
// (Section 5.1.2) turns a right-recursive rule into a left-recursive one
// and switches the query's search strategy between bottom-up and
// top-down.
func Reorder(r *ast.Rule, i, j int) error {
	if i < 0 || j < 0 || i >= len(r.Body) || j >= len(r.Body) {
		return fmt.Errorf("planner: reorder %d,%d out of range (body has %d terms)", i, j, len(r.Body))
	}
	r.Body[i], r.Body[j] = r.Body[j], r.Body[i]
	return nil
}
