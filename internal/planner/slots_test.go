package planner

import (
	"testing"

	"ndlog/internal/parser"
)

func TestAssignSlotsFirstOccurrenceOrder(t *testing.T) {
	r, err := parser.ParseRule(
		"sp2 path(@S,D,P,C) :- #link(@S,Z,C1), path(@Z,D,P2,C2), C := C1 + C2, P := f_concatPath(S, P2), C < 10.")
	if err != nil {
		t.Fatal(err)
	}
	m := AssignSlots(r)
	want := []string{"S", "Z", "C1", "D", "P2", "C2", "C", "P"}
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d (%v)", m.Len(), len(want), want)
	}
	for i, name := range want {
		slot, ok := m.Slot(name)
		if !ok || slot != i {
			t.Errorf("Slot(%s) = %d, %v; want %d", name, slot, ok, i)
		}
		if m.Name(i) != name {
			t.Errorf("Name(%d) = %s, want %s", i, m.Name(i), name)
		}
	}
	if _, ok := m.Slot("Missing"); ok {
		t.Error("Slot(Missing) should not resolve")
	}
}

func TestAssignSlotsCoversHeadAggregate(t *testing.T) {
	r, err := parser.ParseRule("sp3 spCost(@S,D,min<C>) :- path(@S,D,P,C).")
	if err != nil {
		t.Fatal(err)
	}
	m := AssignSlots(r)
	for _, name := range []string{"S", "D", "P", "C"} {
		if _, ok := m.Slot(name); !ok {
			t.Errorf("variable %s has no slot", name)
		}
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestAssignSlotsDeterministic(t *testing.T) {
	src := "r1 p(@A,B,X) :- q(@A,B), s(@A,C), X := f_min(B, C), B != C."
	r1, err := parser.ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	m1 := AssignSlots(r1)
	for trial := 0; trial < 20; trial++ {
		r2, _ := parser.ParseRule(src)
		m2 := AssignSlots(r2)
		if m2.Len() != m1.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, m2.Len(), m1.Len())
		}
		for i := 0; i < m1.Len(); i++ {
			if m1.Name(i) != m2.Name(i) {
				t.Fatalf("trial %d: slot %d = %s vs %s", trial, i, m1.Name(i), m2.Name(i))
			}
		}
	}
}
