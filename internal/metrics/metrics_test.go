package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestBandwidthSeries(t *testing.T) {
	b := NewBandwidth(1.0, 10)
	b.Record(0.2, 5000)
	b.Record(0.9, 5000)
	b.Record(2.5, 20000)
	s := b.PerNodeKBps()
	if len(s) != 3 {
		t.Fatalf("series = %v", s)
	}
	// Bucket 0: 10000 bytes / 1s / 10 nodes / 1000 = 1 kBps.
	if s[0].V != 1.0 {
		t.Errorf("bucket 0 = %v", s[0].V)
	}
	if s[1].V != 0 {
		t.Errorf("bucket 1 = %v", s[1].V)
	}
	if s[2].V != 2.0 {
		t.Errorf("bucket 2 = %v", s[2].V)
	}
	if b.PeakKBps() != 2.0 {
		t.Errorf("peak = %v", b.PeakKBps())
	}
	if b.TotalMB() != 0.03 {
		t.Errorf("total = %v", b.TotalMB())
	}
}

func TestBandwidthEmpty(t *testing.T) {
	b := NewBandwidth(1, 0)
	if b.PerNodeKBps() != nil || b.PeakKBps() != 0 || b.TotalMB() != 0 {
		t.Error("empty collector should be zero")
	}
	// Zero node count treated as 1 to avoid division by zero.
	b.Record(0, 1000)
	if b.PerNodeKBps()[0].V != 1 {
		t.Errorf("zero-node series = %v", b.PerNodeKBps())
	}
}

func TestCompletion(t *testing.T) {
	c := NewCompletion(4)
	c.Mark("a", 1.0)
	c.Mark("b", 2.0)
	c.Mark("a", 5.0) // ignored: already marked
	if c.Done() != 2 || c.Fraction() != 0.5 {
		t.Errorf("done=%d frac=%v", c.Done(), c.Fraction())
	}
	if !math.IsNaN(c.ConvergenceTime()) {
		t.Error("incomplete tracker should have NaN convergence")
	}
	c.Mark("c", 3.0)
	c.Mark("d", 2.5)
	if got := c.ConvergenceTime(); got != 3.0 {
		t.Errorf("convergence = %v", got)
	}
	s := c.Series(1.0)
	if len(s) == 0 || s[len(s)-1].V != 1.0 {
		t.Errorf("series = %v", s)
	}
	// At t=2.0, a and b (and nothing else) are done.
	for _, p := range s {
		if p.T == 2.0 && p.V != 0.5 {
			t.Errorf("fraction at 2.0 = %v", p.V)
		}
	}
	if c.Expected() != 4 {
		t.Errorf("expected = %d", c.Expected())
	}
}

func TestCompletionEdgeCases(t *testing.T) {
	c := NewCompletion(0)
	if c.Fraction() != 1 {
		t.Error("zero-expected fraction should be 1")
	}
	if c.Series(1) != nil {
		t.Error("empty series expected")
	}
	if !math.IsNaN(c.ConvergenceTime()) {
		t.Error("zero-expected convergence should be NaN")
	}
}

func TestFormatSeries(t *testing.T) {
	out := FormatSeries("time", []string{"A", "B"}, [][]Point{
		{{T: 0, V: 1}, {T: 1, V: 2}},
		{{T: 0, V: 3}},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "B") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.000") || !strings.Contains(lines[1], "3.000") {
		t.Errorf("row 0 = %q", lines[1])
	}
}
