// Package metrics collects the measurements the paper's evaluation
// plots: per-node bandwidth over time (kBps), aggregate communication
// (MB), convergence time, and the fraction of eventual best results
// completed over time.
//
// Collectors are plain single-owner accumulators with no internal
// locking: the simulator harness records from its (single) event loop.
// Drivers with concurrent sources (e.g. real-socket runners) must
// serialize Record calls or aggregate per-source and merge.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bandwidth accumulates transmitted bytes into fixed-width time buckets.
type Bandwidth struct {
	Bucket float64 // bucket width in seconds
	Nodes  int     // node count, for per-node averaging
	bytes  map[int]float64
	total  float64
}

// NewBandwidth creates a collector with the given bucket width and node
// count.
func NewBandwidth(bucket float64, nodes int) *Bandwidth {
	return &Bandwidth{Bucket: bucket, Nodes: nodes, bytes: map[int]float64{}}
}

// Record adds a transmission of the given size at virtual time now.
func (b *Bandwidth) Record(now float64, bytes int) {
	b.bytes[int(now/b.Bucket)] += float64(bytes)
	b.total += float64(bytes)
}

// TotalMB returns the aggregate communication in megabytes.
func (b *Bandwidth) TotalMB() float64 { return b.total / 1e6 }

// Point is one sample of a time series.
type Point struct {
	T float64
	V float64
}

// PerNodeKBps returns the average per-node bandwidth series in kB/s.
func (b *Bandwidth) PerNodeKBps() []Point {
	if len(b.bytes) == 0 {
		return nil
	}
	maxIdx := 0
	for i := range b.bytes {
		if i > maxIdx {
			maxIdx = i
		}
	}
	nodes := b.Nodes
	if nodes == 0 {
		nodes = 1
	}
	out := make([]Point, 0, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		kbps := b.bytes[i] / b.Bucket / float64(nodes) / 1000
		out = append(out, Point{T: float64(i) * b.Bucket, V: kbps})
	}
	return out
}

// PeakKBps returns the maximum of the per-node bandwidth series.
func (b *Bandwidth) PeakKBps() float64 {
	peak := 0.0
	for _, p := range b.PerNodeKBps() {
		if p.V > peak {
			peak = p.V
		}
	}
	return peak
}

// Completion tracks when each expected result first becomes correct,
// yielding the "% results over time" series of Figures 8 and 10.
type Completion struct {
	expected  int
	firstSeen map[string]float64
}

// NewCompletion creates a tracker for the given number of expected
// results.
func NewCompletion(expected int) *Completion {
	return &Completion{expected: expected, firstSeen: map[string]float64{}}
}

// Mark records that result key was first correct at time now (later
// marks for the same key are ignored).
func (c *Completion) Mark(key string, now float64) {
	if _, ok := c.firstSeen[key]; !ok {
		c.firstSeen[key] = now
	}
}

// Done returns how many expected results have been marked.
func (c *Completion) Done() int { return len(c.firstSeen) }

// Expected returns the denominator.
func (c *Completion) Expected() int { return c.expected }

// Fraction returns Done/Expected.
func (c *Completion) Fraction() float64 {
	if c.expected == 0 {
		return 1
	}
	return float64(len(c.firstSeen)) / float64(c.expected)
}

// ConvergenceTime returns the time the last expected result arrived, or
// NaN if incomplete.
func (c *Completion) ConvergenceTime() float64 {
	if len(c.firstSeen) < c.expected || c.expected == 0 {
		return math.NaN()
	}
	worst := 0.0
	for _, t := range c.firstSeen {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Series returns the completion fraction sampled at step intervals from
// 0 to the convergence time (or the latest mark).
func (c *Completion) Series(step float64) []Point {
	times := make([]float64, 0, len(c.firstSeen))
	for _, t := range c.firstSeen {
		times = append(times, t)
	}
	sort.Float64s(times)
	if len(times) == 0 {
		return nil
	}
	end := times[len(times)-1]
	var out []Point
	i := 0
	for t := 0.0; ; t += step {
		for i < len(times) && times[i] <= t {
			i++
		}
		frac := float64(i) / float64(max(c.expected, 1))
		out = append(out, Point{T: t, V: frac})
		if t >= end {
			break
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatSeries renders labelled series side by side as aligned text
// columns — the textual equivalent of one of the paper's plots.
func FormatSeries(xlabel string, labels []string, series [][]Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", xlabel)
	for _, l := range labels {
		fmt.Fprintf(&b, " %14s", l)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		var t float64
		for _, s := range series {
			if i < len(s) {
				t = s[i].T
				break
			}
		}
		fmt.Fprintf(&b, "%-10.2f", t)
		for _, s := range series {
			if i < len(s) {
				fmt.Fprintf(&b, " %14.3f", s[i].V)
			} else {
				fmt.Fprintf(&b, " %14s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
