package simnet

import (
	"fmt"
	"testing"
)

// recorder is a Handler that logs deliveries and timer fires.
type recorder struct {
	deliveries []delivery
	timers     []string
	onMsg      func(now float64, from NodeID, payload []byte)
}

type delivery struct {
	at      float64
	from    NodeID
	payload string
}

func (r *recorder) HandleMessage(now float64, from NodeID, payload []byte) {
	r.deliveries = append(r.deliveries, delivery{at: now, from: from, payload: string(payload)})
	if r.onMsg != nil {
		r.onMsg(now, from, payload)
	}
}

func (r *recorder) HandleTimer(now float64, key string) {
	r.timers = append(r.timers, fmt.Sprintf("%s@%g", key, now))
}

func twoNodes(t *testing.T) (*Sim, *recorder, *recorder) {
	t.Helper()
	s := New(1)
	ra, rb := &recorder{}, &recorder{}
	s.AddNode("a", ra)
	s.AddNode("b", rb)
	if err := s.AddLink("a", "b", 0.010, 0); err != nil {
		t.Fatal(err)
	}
	return s, ra, rb
}

func TestSendDeliversWithLatency(t *testing.T) {
	s, _, rb := twoNodes(t)
	if err := s.Send("a", "b", []byte("hi"), 0); err != nil {
		t.Fatal(err)
	}
	if !s.RunToQuiescence(100) {
		t.Fatal("did not quiesce")
	}
	if len(rb.deliveries) != 1 {
		t.Fatalf("deliveries = %v", rb.deliveries)
	}
	d := rb.deliveries[0]
	if d.at != 0.010 || d.from != "a" || d.payload != "hi" {
		t.Errorf("delivery = %+v", d)
	}
	if s.Messages() != 1 {
		t.Errorf("messages = %d", s.Messages())
	}
	if s.Bytes() != int64(2+HeaderBytes) {
		t.Errorf("bytes = %d", s.Bytes())
	}
	if s.LastDelivery() != 0.010 {
		t.Errorf("last delivery = %v", s.LastDelivery())
	}
}

func TestSendErrors(t *testing.T) {
	s, _, _ := twoNodes(t)
	if err := s.Send("a", "zzz", nil, 0); err == nil {
		t.Error("send to unlinked node should fail")
	}
	if err := s.AddLink("a", "zzz", 1, 0); err == nil {
		t.Error("link to unknown node should fail")
	}
	if err := s.SetLatency("a", "zzz", 1); err == nil {
		t.Error("SetLatency on missing link should fail")
	}
}

func TestFIFOOrderingWithVaryingDelays(t *testing.T) {
	s, _, rb := twoNodes(t)
	// First message has a big sender delay; second is sent immediately
	// after with no delay. FIFO requires the second not to overtake.
	s.Send("a", "b", []byte("first"), 0.100)
	s.Send("a", "b", []byte("second"), 0)
	s.RunToQuiescence(100)
	if len(rb.deliveries) != 2 {
		t.Fatalf("deliveries = %v", rb.deliveries)
	}
	if rb.deliveries[0].payload != "first" || rb.deliveries[1].payload != "second" {
		t.Errorf("FIFO violated: %v", rb.deliveries)
	}
	if rb.deliveries[1].at < rb.deliveries[0].at {
		t.Errorf("arrival times out of order: %v", rb.deliveries)
	}
}

func TestBidirectionalAndNeighbors(t *testing.T) {
	s, ra, _ := twoNodes(t)
	s.Send("b", "a", []byte("x"), 0)
	s.RunToQuiescence(10)
	if len(ra.deliveries) != 1 {
		t.Error("reverse direction failed")
	}
	if !s.HasLink("a", "b") || !s.HasLink("b", "a") {
		t.Error("links should be bidirectional")
	}
	if n := s.Neighbors("a"); len(n) != 1 || n[0] != "b" {
		t.Errorf("neighbors = %v", n)
	}
	s.RemoveLink("a", "b")
	if s.HasLink("a", "b") || s.HasLink("b", "a") {
		t.Error("RemoveLink should drop both directions")
	}
}

func TestTimers(t *testing.T) {
	s, ra, _ := twoNodes(t)
	s.ScheduleTimer("a", 0.5, "tick")
	s.ScheduleTimer("a", 0.2, "tock")
	s.RunToQuiescence(10)
	if len(ra.timers) != 2 || ra.timers[0] != "tock@0.2" || ra.timers[1] != "tick@0.5" {
		t.Errorf("timers = %v", ra.timers)
	}
}

func TestScheduleFunc(t *testing.T) {
	s, _, _ := twoNodes(t)
	var fired float64 = -1
	s.ScheduleFunc(1.5, func(now float64) { fired = now })
	s.RunToQuiescence(10)
	if fired != 1.5 {
		t.Errorf("func fired at %v", fired)
	}
}

func TestRunHorizon(t *testing.T) {
	s, ra, _ := twoNodes(t)
	s.ScheduleTimer("a", 1.0, "early")
	s.ScheduleTimer("a", 5.0, "late")
	n := s.Run(2.0)
	if n != 1 || len(ra.timers) != 1 {
		t.Errorf("Run processed %d events, timers=%v", n, ra.timers)
	}
	if s.Now() != 2.0 {
		// Clock advances to the horizon only when the queue empties; a
		// pending event holds the clock at its last processed time.
		if s.Now() != 1.0 {
			t.Errorf("now = %v", s.Now())
		}
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(10)
	if len(ra.timers) != 2 {
		t.Errorf("late timer not fired: %v", ra.timers)
	}
}

func TestLoopback(t *testing.T) {
	s, ra, _ := twoNodes(t)
	s.SendLoopback("a", []byte("self"), 0.001)
	s.RunToQuiescence(10)
	if len(ra.deliveries) != 1 || ra.deliveries[0].from != "a" {
		t.Errorf("loopback = %v", ra.deliveries)
	}
}

func TestLoss(t *testing.T) {
	s := New(7)
	ra, rb := &recorder{}, &recorder{}
	s.AddNode("a", ra)
	s.AddNode("b", rb)
	s.AddLink("a", "b", 0.001, 0.5)
	for i := 0; i < 1000; i++ {
		s.Send("a", "b", []byte{byte(i)}, 0)
	}
	s.RunToQuiescence(10000)
	got := len(rb.deliveries)
	if got < 350 || got > 650 {
		t.Errorf("with 50%% loss, delivered %d of 1000", got)
	}
	if s.Dropped() != int64(1000-got) {
		t.Errorf("dropped = %d, delivered = %d", s.Dropped(), got)
	}
}

func TestObserverAndAccounting(t *testing.T) {
	s, _, _ := twoNodes(t)
	var total int
	s.Observe(func(now float64, from, to NodeID, bytes int) { total += bytes })
	s.Send("a", "b", make([]byte, 100), 0)
	s.Send("b", "a", make([]byte, 50), 0)
	s.RunToQuiescence(10)
	want := 100 + HeaderBytes + 50 + HeaderBytes
	if total != want || s.Bytes() != int64(want) {
		t.Errorf("observed %d, accounted %d, want %d", total, s.Bytes(), want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []delivery {
		s := New(42)
		ra, rb := &recorder{}, &recorder{}
		s.AddNode("a", ra)
		s.AddNode("b", rb)
		s.AddLink("a", "b", 0.002, 0.1)
		rb.onMsg = func(now float64, from NodeID, payload []byte) {
			if len(payload) < 10 {
				s.Send("b", "a", append(payload, 'x'), 0.001)
			}
		}
		ra.onMsg = func(now float64, from NodeID, payload []byte) {
			if len(payload) < 10 {
				s.Send("a", "b", append(payload, 'y'), 0.001)
			}
		}
		s.Send("a", "b", []byte("go"), 0)
		s.RunToQuiescence(1000)
		return append(ra.deliveries, rb.deliveries...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEqualTimeFIFOSeq(t *testing.T) {
	// Two zero-latency messages sent in order must arrive in order.
	s := New(1)
	ra, rb := &recorder{}, &recorder{}
	s.AddNode("a", ra)
	s.AddNode("b", rb)
	s.AddLink("a", "b", 0, 0)
	s.Send("a", "b", []byte("1"), 0)
	s.Send("a", "b", []byte("2"), 0)
	s.RunToQuiescence(10)
	if rb.deliveries[0].payload != "1" || rb.deliveries[1].payload != "2" {
		t.Errorf("same-time ordering violated: %v", rb.deliveries)
	}
}

func TestRunToQuiescenceSafetyValve(t *testing.T) {
	s, ra, _ := twoNodes(t)
	// Self-perpetuating timer: never quiesces.
	var rearm func(now float64)
	rearm = func(now float64) { s.ScheduleFunc(0.1, rearm) }
	s.ScheduleFunc(0.1, rearm)
	if s.RunToQuiescence(50) {
		t.Error("should not quiesce")
	}
	_ = ra
}

func TestPartitionHeal(t *testing.T) {
	s, _, rb := twoNodes(t)
	if err := s.SetDown("a", "b", true); err != nil {
		t.Fatal(err)
	}
	if !s.HasLink("a", "b") {
		t.Fatal("partition removed the link; it should only mark it down")
	}
	if !s.Down("a", "b") || !s.Down("b", "a") {
		t.Fatal("down flag not set on both directions")
	}
	if err := s.Send("a", "b", []byte("lost"), 0); err != nil {
		t.Fatal(err)
	}
	s.RunToQuiescence(100)
	if len(rb.deliveries) != 0 || s.Dropped() != 1 {
		t.Fatalf("down link delivered: %v (dropped=%d)", rb.deliveries, s.Dropped())
	}
	s.Heal()
	if err := s.Send("a", "b", []byte("back"), 0); err != nil {
		t.Fatal(err)
	}
	s.RunToQuiescence(100)
	if len(rb.deliveries) != 1 || rb.deliveries[0].payload != "back" {
		t.Fatalf("healed link deliveries = %v", rb.deliveries)
	}
}

func TestPartitionGroups(t *testing.T) {
	s := New(1)
	rs := map[NodeID]*recorder{}
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		rs[id] = &recorder{}
		s.AddNode(id, rs[id])
	}
	// Square: a-b, c-d inside the halves; a-c, b-d across.
	for _, e := range [][2]NodeID{{"a", "b"}, {"c", "d"}, {"a", "c"}, {"b", "d"}} {
		if err := s.AddLink(e[0], e[1], 0.01, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Partition("a", "b")
	if !s.Down("a", "c") || !s.Down("b", "d") {
		t.Fatal("cross-partition links should be down")
	}
	if s.Down("a", "b") || s.Down("c", "d") {
		t.Fatal("intra-partition links should stay up")
	}
	s.Isolate("a")
	if !s.Down("a", "b") {
		t.Fatal("Isolate should take every link of the node down")
	}
	s.Restore("a")
	if s.Down("a", "b") || s.Down("a", "c") {
		t.Fatal("Restore should bring the node's links back")
	}
}

func TestJitterDeterministicAndFIFO(t *testing.T) {
	run := func(seed int64) []float64 {
		s := New(seed)
		rb := &recorder{}
		s.AddNode("a", &recorder{})
		s.AddNode("b", rb)
		if err := s.AddLink("a", "b", 0.010, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetJitter("a", "b", 0.050); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := s.Send("a", "b", []byte{byte(i)}, 0); err != nil {
				t.Fatal(err)
			}
		}
		s.RunToQuiescence(1000)
		out := make([]float64, 0, len(rb.deliveries))
		for i, d := range rb.deliveries {
			if d.payload != string([]byte{byte(i)}) {
				t.Fatalf("jitter broke FIFO: delivery %d is %q", i, d.payload)
			}
			out = append(out, d.at)
		}
		return out
	}
	a, b := run(7), run(7)
	jittered := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different arrival %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] != 0.010 {
			jittered = true
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals out of order: %g after %g", a[i], a[i-1])
		}
	}
	if !jittered {
		t.Fatal("jitter knob had no effect on arrivals")
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

func TestSetLoss(t *testing.T) {
	s, _, rb := twoNodes(t)
	if err := s.SetLoss("a", "b", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("a", "b", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	s.RunToQuiescence(100)
	if len(rb.deliveries) != 0 {
		t.Fatal("loss=1 delivered a message")
	}
	if err := s.SetLoss("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("a", "b", []byte("y"), 0); err != nil {
		t.Fatal(err)
	}
	s.RunToQuiescence(100)
	if len(rb.deliveries) != 1 {
		t.Fatal("loss=0 did not deliver")
	}
}
