// Package simnet is a deterministic discrete-event network simulator.
// It stands in for the paper's 100-machine Emulab deployment: nodes
// exchange messages over point-to-point links with configurable latency
// and loss, message delivery preserves per-link FIFO order (required by
// Theorem 4), and every transmitted byte is accounted so the experiment
// harness can reproduce the paper's bandwidth figures.
//
// Virtual time is in seconds. Handlers run instantaneously in virtual
// time; processing cost is modelled by scheduling delayed sends/timers.
//
// Ownership: Send retains the payload slice until delivery — senders
// must not reuse or scribble over it after handing it off (the engine's
// encoders allocate a fresh payload per message for exactly this
// reason). Conversely a Handler only borrows the payload for the
// duration of HandleMessage; retaining it requires a copy, which the
// engine's copy-on-decode invariant provides. The simulator itself is
// single-threaded: all handlers run on the event loop's goroutine.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// NodeID names a simulated node.
type NodeID string

// Handler receives messages and timer callbacks for one node.
type Handler interface {
	// HandleMessage is invoked at virtual time now when payload arrives
	// from a neighbor.
	HandleMessage(now float64, from NodeID, payload []byte)
	// HandleTimer is invoked at virtual time now for a timer scheduled
	// with ScheduleTimer.
	HandleTimer(now float64, key string)
}

// HeaderBytes is the fixed per-message overhead added to every payload
// when accounting bandwidth (an IP+UDP-like header).
const HeaderBytes = 28

// ErrNoLink is returned when sending between unconnected nodes.
var ErrNoLink = errors.New("simnet: no link between nodes")

// ErrUnknownNode is returned for operations on unregistered nodes.
var ErrUnknownNode = errors.New("simnet: unknown node")

type link struct {
	latency float64
	loss    float64 // probability a message is dropped
	// jitter adds a uniform [0, jitter) extra delay per message, drawn
	// from the simulator's seeded rng so runs stay reproducible.
	jitter float64
	// down marks a partitioned link: it still exists (HasLink is true,
	// the engine's link-restriction checks still pass) but every message
	// on it is dropped until the partition heals.
	down bool
	// lastArrival enforces FIFO delivery even when extra per-message
	// delays vary: a message never arrives before its predecessor.
	lastArrival float64
}

type eventKind uint8

const (
	evDeliver eventKind = iota
	evTimer
	evFunc
)

type event struct {
	time float64
	seq  uint64 // FIFO tie-break for equal times
	kind eventKind

	// deliver
	from, to NodeID
	payload  []byte

	// timer
	node NodeID
	key  string

	// func
	fn func(now float64)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// SendObserver is notified of every message transmission, for bandwidth
// accounting. bytes includes HeaderBytes.
type SendObserver func(now float64, from, to NodeID, bytes int)

// Sim is the simulator. The zero value is not usable; call New.
type Sim struct {
	now      float64
	seq      uint64
	queue    eventQueue
	nodes    map[NodeID]Handler
	links    map[NodeID]map[NodeID]*link
	rng      *rand.Rand
	observer SendObserver

	// Stats.
	messages     int64
	bytes        int64
	dropped      int64
	lastDelivery float64
}

// New creates a simulator with the given seed for loss decisions.
func New(seed int64) *Sim {
	return &Sim{
		nodes: map[NodeID]Handler{},
		links: map[NodeID]map[NodeID]*link{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Messages returns the number of delivered messages.
func (s *Sim) Messages() int64 { return s.messages }

// Bytes returns the total bytes transmitted (including headers).
func (s *Sim) Bytes() int64 { return s.bytes }

// Dropped returns the number of lost messages.
func (s *Sim) Dropped() int64 { return s.dropped }

// LastDelivery returns the virtual time of the most recent message
// delivery — the convergence time once the simulation quiesces.
func (s *Sim) LastDelivery() float64 { return s.lastDelivery }

// Observe registers an observer called on every send.
func (s *Sim) Observe(fn SendObserver) { s.observer = fn }

// AddNode registers a node and its handler.
func (s *Sim) AddNode(id NodeID, h Handler) {
	s.nodes[id] = h
	if s.links[id] == nil {
		s.links[id] = map[NodeID]*link{}
	}
}

// Nodes returns all registered node IDs in sorted order.
func (s *Sim) Nodes() []NodeID {
	out := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLink creates a bidirectional link with the given one-way latency in
// seconds and loss probability in [0,1).
func (s *Sim) AddLink(a, b NodeID, latency, loss float64) error {
	if _, ok := s.nodes[a]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, a)
	}
	if _, ok := s.nodes[b]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, b)
	}
	s.links[a][b] = &link{latency: latency, loss: loss}
	s.links[b][a] = &link{latency: latency, loss: loss}
	return nil
}

// RemoveLink tears down both directions of a link.
func (s *Sim) RemoveLink(a, b NodeID) {
	delete(s.links[a], b)
	delete(s.links[b], a)
}

// SetLatency updates both directions of an existing link.
func (s *Sim) SetLatency(a, b NodeID, latency float64) error {
	la, ok := s.links[a][b]
	if !ok {
		return fmt.Errorf("%w: %s-%s", ErrNoLink, a, b)
	}
	lb := s.links[b][a]
	la.latency = latency
	lb.latency = latency
	return nil
}

// SetLoss updates the loss probability of both directions of a link.
func (s *Sim) SetLoss(a, b NodeID, loss float64) error {
	la, ok := s.links[a][b]
	if !ok {
		return fmt.Errorf("%w: %s-%s", ErrNoLink, a, b)
	}
	la.loss = loss
	s.links[b][a].loss = loss
	return nil
}

// SetJitter gives both directions of a link a per-message extra delay
// drawn uniformly from [0, jitter). Draws come from the simulator's
// seeded rng, so a fixed seed still yields a fixed schedule; FIFO order
// is preserved by the per-link arrival clamp.
func (s *Sim) SetJitter(a, b NodeID, jitter float64) error {
	la, ok := s.links[a][b]
	if !ok {
		return fmt.Errorf("%w: %s-%s", ErrNoLink, a, b)
	}
	la.jitter = jitter
	s.links[b][a].jitter = jitter
	return nil
}

// EachLink calls fn once per undirected link (a < b). Use it to apply a
// loss or jitter knob network-wide.
func (s *Sim) EachLink(fn func(a, b NodeID)) {
	for _, a := range s.Nodes() {
		for _, b := range s.Neighbors(a) {
			if a < b {
				fn(a, b)
			}
		}
	}
}

// SetDown marks both directions of a link down (true) or up (false).
// A down link drops every message silently — unlike RemoveLink, the
// topology stays intact, so healing is a pure state flip and no
// link-restriction bookkeeping changes.
func (s *Sim) SetDown(a, b NodeID, down bool) error {
	la, ok := s.links[a][b]
	if !ok {
		return fmt.Errorf("%w: %s-%s", ErrNoLink, a, b)
	}
	la.down = down
	s.links[b][a].down = down
	return nil
}

// Partition cuts the network into {members} vs the rest: every link
// with exactly one endpoint in members goes down. Links inside either
// side are untouched, so repeated partitions compose.
func (s *Sim) Partition(members ...NodeID) {
	in := make(map[NodeID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	s.EachLink(func(a, b NodeID) {
		if in[a] != in[b] {
			s.SetDown(a, b, true)
		}
	})
}

// Isolate takes every link of id down — the simulator's "node failure".
func (s *Sim) Isolate(id NodeID) {
	for _, n := range s.Neighbors(id) {
		s.SetDown(id, n, true)
	}
}

// Restore brings every link of id back up.
func (s *Sim) Restore(id NodeID) {
	for _, n := range s.Neighbors(id) {
		s.SetDown(id, n, false)
	}
}

// Heal brings every link in the network back up.
func (s *Sim) Heal() {
	s.EachLink(func(a, b NodeID) { s.SetDown(a, b, false) })
}

// Down reports whether the a->b link is currently partitioned.
func (s *Sim) Down(a, b NodeID) bool {
	l, ok := s.links[a][b]
	return ok && l.down
}

// HasLink reports whether a direct link exists.
func (s *Sim) HasLink(a, b NodeID) bool {
	_, ok := s.links[a][b]
	return ok
}

// Neighbors returns the nodes directly linked to id, sorted.
func (s *Sim) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, 0, len(s.links[id]))
	for n := range s.links[id] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Send transmits payload from->to along a direct link, with an optional
// extra sender-side delay (e.g. per-tuple processing cost or batching).
// The message arrives after delay + link latency, never earlier than a
// previously sent message on the same directed link (FIFO).
func (s *Sim) Send(from, to NodeID, payload []byte, delay float64) error {
	l, ok := s.links[from][to]
	if !ok {
		return fmt.Errorf("%w: %s->%s", ErrNoLink, from, to)
	}
	size := len(payload) + HeaderBytes
	s.bytes += int64(size)
	if s.observer != nil {
		s.observer(s.now, from, to, size)
	}
	if l.down {
		s.dropped++
		return nil
	}
	if l.loss > 0 && s.rng.Float64() < l.loss {
		s.dropped++
		return nil
	}
	arrive := s.now + delay + l.latency
	if l.jitter > 0 {
		arrive += s.rng.Float64() * l.jitter
	}
	if arrive < l.lastArrival {
		arrive = l.lastArrival
	}
	l.lastArrival = arrive
	s.push(&event{time: arrive, kind: evDeliver, from: from, to: to, payload: payload})
	return nil
}

// SendLoopback delivers a payload to the sending node itself after
// delay; used for locally recursive derivations that should consume
// virtual processing time.
func (s *Sim) SendLoopback(node NodeID, payload []byte, delay float64) {
	s.push(&event{time: s.now + delay, kind: evDeliver, from: node, to: node, payload: payload})
}

// ScheduleTimer fires Handler.HandleTimer(key) on node after delay.
func (s *Sim) ScheduleTimer(node NodeID, delay float64, key string) {
	s.push(&event{time: s.now + delay, kind: evTimer, node: node, key: key})
}

// ScheduleFunc runs fn at now+delay. The harness uses this to inject
// link updates mid-run.
func (s *Sim) ScheduleFunc(delay float64, fn func(now float64)) {
	s.push(&event{time: s.now + delay, kind: evFunc, fn: fn})
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Step processes one event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	if e.time > s.now {
		s.now = e.time
	}
	switch e.kind {
	case evDeliver:
		h, ok := s.nodes[e.to]
		if !ok {
			return true // node removed mid-flight; drop
		}
		s.messages++
		s.lastDelivery = s.now
		h.HandleMessage(s.now, e.from, e.payload)
	case evTimer:
		if h, ok := s.nodes[e.node]; ok {
			h.HandleTimer(s.now, e.key)
		}
	case evFunc:
		e.fn(s.now)
	}
	return true
}

// Run processes events until the queue is empty or virtual time would
// exceed until (events beyond the horizon stay queued). It returns the
// number of events processed.
func (s *Sim) Run(until float64) int {
	n := 0
	for s.queue.Len() > 0 {
		if s.queue[0].time > until {
			break
		}
		s.Step()
		n++
	}
	if s.now < until && s.queue.Len() == 0 {
		s.now = until
	}
	return n
}

// RunToQuiescence processes events until none remain or maxEvents is
// reached (a safety valve against non-terminating programs). It reports
// whether the network quiesced.
func (s *Sim) RunToQuiescence(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if !s.Step() {
			return true
		}
	}
	return s.queue.Len() == 0
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }
