// Package ndlog_test holds the benchmark harness: one benchmark per
// table/figure of the paper's evaluation (Section 6), plus ablation
// benchmarks for the design choices called out in DESIGN.md. Benchmarks
// run on the scaled-down topology so `go test -bench=.` finishes
// quickly; `cmd/ndbench` runs the same experiments at paper scale.
package ndlog_test

import (
	"fmt"
	"testing"

	"ndlog/internal/conform"
	"ndlog/internal/engine"
	"ndlog/internal/experiments"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// reportSP attaches the summary metrics of an aggregate-selections run
// to the benchmark output.
func reportSP(b *testing.B, res []experiments.SPResult) {
	b.Helper()
	var mb, conv float64
	for _, r := range res {
		mb += r.TotalMB
		if r.ConvergenceSec > conv {
			conv = r.ConvergenceSec
		}
		if r.Missing != 0 || r.Wrong != 0 {
			b.Fatalf("%s: missing=%d wrong=%d", r.Metric, r.Missing, r.Wrong)
		}
	}
	b.ReportMetric(mb/float64(b.N), "MB/run")
	b.ReportMetric(conv, "vsec-converge")
}

// BenchmarkFig7AggregateSelections regenerates Figure 7 (per-node
// bandwidth under the four metrics with immediate aggregate selections).
func BenchmarkFig7AggregateSelections(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAggSel(experiments.Small(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSP(b, res)
		}
	}
}

// BenchmarkFig8ResultsOverTime regenerates Figure 8 (completion series);
// the run is shared with Figure 7, so this benchmark validates that the
// completion series reaches 1.0 for every metric.
func BenchmarkFig8ResultsOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAggSel(experiments.Small(), 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if len(r.Completion) == 0 || r.Completion[len(r.Completion)-1].V != 1.0 {
				b.Fatalf("%s: incomplete", r.Metric)
			}
		}
	}
}

// BenchmarkFig9PeriodicAggSel regenerates Figure 9 (periodic aggregate
// selections, bandwidth).
func BenchmarkFig9PeriodicAggSel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAggSel(experiments.Small(), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSP(b, res)
		}
	}
}

// BenchmarkFig10PeriodicResults regenerates Figure 10 (completion under
// periodic aggregate selections).
func BenchmarkFig10PeriodicResults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAggSel(experiments.Small(), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Missing != 0 || r.Wrong != 0 {
				b.Fatalf("%s: missing=%d wrong=%d", r.Metric, r.Missing, r.Wrong)
			}
		}
	}
}

// BenchmarkFig11MagicSets regenerates Figure 11 (No-MS / MS / MSC /
// MSC-30% / MSC-10% aggregate communication).
func BenchmarkFig11MagicSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMagic(experiments.Small(), 24, 6)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := len(res.Queries) - 1
			b.ReportMetric(res.MS[last], "MS-MB")
			b.ReportMetric(res.MSC[last], "MSC-MB")
		}
	}
}

// BenchmarkFig12MessageSharing regenerates Figure 12 (opportunistic
// message sharing).
func BenchmarkFig12MessageSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunShare(experiments.Small(), 0.050)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.NoShareMB, "noshare-MB")
			b.ReportMetric(res.ShareMB, "share-MB")
		}
	}
}

// BenchmarkFig13IncrementalUpdates regenerates Figure 13 (periodic link
// updates, single interval).
func BenchmarkFig13IncrementalUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunUpdates(experiments.Small(), []float64{2}, 10, 0.10, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		if res.Missing != 0 || res.Wrong != 0 {
			b.Fatalf("missing=%d wrong=%d", res.Missing, res.Wrong)
		}
		if i == b.N-1 {
			b.ReportMetric(res.InitialMB, "initial-MB")
			b.ReportMetric(res.BurstAvgMB, "burst-MB")
		}
	}
}

// BenchmarkFig14InterleavedUpdates regenerates Figure 14 (interleaved
// 2 s / 8 s update intervals).
func BenchmarkFig14InterleavedUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunUpdates(experiments.Small(), []float64{0.5, 2}, 8, 0.10, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		if res.Missing != 0 || res.Wrong != 0 {
			b.Fatalf("missing=%d wrong=%d", res.Missing, res.Wrong)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md Section 6) ---

// figure2Links is the Section 2.2 example network.
var figure2Links = []struct {
	a, b string
	cost float64
}{
	{"a", "b", 5}, {"a", "c", 1}, {"c", "b", 1}, {"b", "d", 1}, {"e", "a", 1},
}

func runFigure2Cluster(b *testing.B, opts engine.Options, cfg engine.ClusterConfig) *simnet.Sim {
	b.Helper()
	sim := simnet.New(1)
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range figure2Links {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	cl, err := engine.NewCluster(sim, prog, opts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range []simnet.NodeID{"a", "b", "c", "d", "e"} {
		cl.AddNode(id)
	}
	for _, l := range figure2Links {
		if err := sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0); err != nil {
			b.Fatal(err)
		}
	}
	if ok, err := cl.Run(5_000_000); err != nil || !ok {
		b.Fatalf("run: ok=%v err=%v", ok, err)
	}
	return sim
}

// BenchmarkAblationPSNvsBSN compares pipelined against buffered
// semi-naïve evaluation on the same workload.
func BenchmarkAblationPSNvsBSN(b *testing.B) {
	for _, mode := range []engine.Mode{engine.PSN, engine.BSN} {
		b.Run(mode.String(), func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				sim := runFigure2Cluster(b, engine.Options{Mode: mode},
					engine.ClusterConfig{BSNDelay: 0.005})
				msgs = sim.Messages()
			}
			b.ReportMetric(float64(msgs), "msgs/run")
		})
	}
}

// BenchmarkAblationAggSel compares the shortest-path query with and
// without aggregate selections (Section 5.1.1).
func BenchmarkAblationAggSel(b *testing.B) {
	for _, aggsel := range []bool{false, true} {
		name := "off"
		if aggsel {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				sim := runFigure2Cluster(b, engine.Options{AggSel: aggsel}, engine.ClusterConfig{})
				bytes = sim.Bytes()
			}
			b.ReportMetric(float64(bytes), "bytes/run")
		})
	}
}

// BenchmarkAblationCentralEval measures the centralized evaluator on the
// transitive closure of a modest random graph, per evaluation mode.
func BenchmarkAblationCentralEval(b *testing.B) {
	src := `
materialize(edge, infinity, infinity, keys(1,2)).
r1 reach(@S,@D) :- #edge(@S,@D).
r2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
`
	for _, mode := range []engine.Mode{engine.PSN, engine.SN} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog, err := parser.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				c, err := engine.NewCentral(prog, engine.Options{Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				// 30-node DAG chain with shortcuts.
				for j := 0; j < 29; j++ {
					c.Insert(tupleEdge(j, j+1))
					if j+3 < 30 {
						c.Insert(tupleEdge(j, j+3))
					}
				}
			}
		})
	}
}

// BenchmarkCentralEvalParallelism measures the centralized evaluator's
// intra-node worker pool: the same batched transitive-closure fixpoint
// at Parallelism 1 (sequential semi-naïve rounds) and 4 (rule strands
// over each round's inserts fan out across workers sharing a
// concurrent interner). Run with -cpu 1,4 to vary GOMAXPROCS; on a
// single-core host the p4 row documents coordination overhead, which
// is the honest number there.
func BenchmarkCentralEvalParallelism(b *testing.B) {
	src := `
materialize(edge, infinity, infinity, keys(1,2)).
r1 reach(@S,@D) :- #edge(@S,@D).
r2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
`
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog, err := parser.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				c, err := engine.NewCentral(prog, engine.Options{Mode: engine.SN, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				// One batched fixpoint over a 60-node DAG chain with
				// shortcuts: big rounds, so the pool has work per round.
				for j := 0; j < 59; j++ {
					c.Node().Push(engine.Insert(tupleEdge(j, j+1)))
					if j+3 < 60 {
						c.Node().Push(engine.Insert(tupleEdge(j, j+3)))
					}
				}
				c.Fixpoint()
				if n := len(c.Tuples("reach")); n == 0 {
					b.Fatal("empty fixpoint")
				}
			}
		})
	}
}

// BenchmarkParallelExecutor measures wall-clock convergence of the
// in-process parallel executor on the Figure 7 workload (all-pairs
// shortest path over the small overlay) at 1 and 4 workers. Run with
// -cpu 1,4 to vary GOMAXPROCS alongside the pool size.
func BenchmarkParallelExecutor(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunParallel(experiments.Small(), []int{w})
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].Missing != 0 || rows[0].Wrong != 0 || rows[0].Undelivers != 0 {
					b.Fatalf("row %+v", rows[0])
				}
			}
		})
	}
}

// BenchmarkNeighborhoodFunction measures the N(X,r) statistic used by
// cost-based optimization (Section 5.3).
func BenchmarkNeighborhoodFunction(b *testing.B) {
	o := experiments.BuildOverlay(experiments.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range o.Nodes[:10] {
			o.Neighborhood(n, 3)
		}
	}
}

// BenchmarkHybridSplit measures the hybrid TD/BU search-radius split
// optimization (Section 5.3).
func BenchmarkHybridSplit(b *testing.B) {
	o := experiments.BuildOverlay(experiments.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.HybridSplit(o.Nodes[0], o.Nodes[len(o.Nodes)-1])
	}
}

// --- Protocol suite benchmarks (internal/conform harnesses) ---

// BenchmarkChordRing forms a 24-node Chord ring from a single landmark
// and drives it to the oracle-checked ring invariant, reporting virtual
// seconds to stability.
func BenchmarkChordRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := conform.DefaultChordOpts(int64(11 + i))
		o.Nodes, o.Reserve = 24, 2
		r, err := conform.NewChordRun(o)
		if err != nil {
			b.Fatal(err)
		}
		r.RunUntil(10)
		for len(r.CheckRing()) > 0 {
			if r.Net.Sim.Now() >= 200 {
				b.Fatalf("ring never converged by t=%.1f", r.Net.Sim.Now())
			}
			r.RunUntil(r.Net.Sim.Now() + o.StabEvery)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Net.Sim.Now(), "vsec-converge")
		}
	}
}

// BenchmarkLinkStateRoutes floods LSAs over the small ring-plus-chords
// topology until every node's routes match the Dijkstra oracle.
func BenchmarkLinkStateRoutes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := conform.DefaultLinkStateOpts(int64(11 + i))
		o.Nodes, o.Chords = 10, 4
		r, err := conform.NewLinkStateRun(o)
		if err != nil {
			b.Fatal(err)
		}
		for len(r.CheckRoutes()) > 0 {
			if r.Net.Sim.Now() >= 30 {
				b.Fatalf("routes never converged by t=%.1f", r.Net.Sim.Now())
			}
			r.RunUntil(r.Net.Sim.Now() + 1)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Net.Sim.Now(), "vsec-converge")
		}
	}
}

// BenchmarkGossipCoverage runs the epidemic failure detector until
// every node's view of every other node is fresh, reporting rounds
// taken against the O(log n) infection bound.
func BenchmarkGossipCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := conform.DefaultGossipOpts(int64(11 + i))
		o.Nodes = 24
		r, err := conform.NewGossipRun(o)
		if err != nil {
			b.Fatal(err)
		}
		rounds := r.ConvergeRounds()
		r.RunRounds(rounds)
		for len(r.CheckFresh(nil)) > 0 {
			if rounds++; rounds > r.ConvergeRounds()+5 {
				b.Fatalf("view not fresh after %d rounds", rounds)
			}
			r.RunRounds(1)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rounds), "rounds-fresh")
			b.ReportMetric(float64(r.ConvergeRounds()), "rounds-bound")
		}
	}
}

func tupleEdge(i, j int) val.Tuple {
	return val.NewTuple("edge", val.NewAddr(nodeName(i)), val.NewAddr(nodeName(j)))
}

func nodeName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }
