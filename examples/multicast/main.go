// Multicast: an application-level multicast tree as a declarative
// overlay (the paper's introduction motivates exactly this workload).
//
// The distance-vector routing protocol and the multicast tree are two
// NDlog programs composed into one: members pick their shortest-path
// next hop toward the root as a tree parent, parents learn children
// (grafting interior nodes on the way), and the tree repairs itself
// when a link on it fails — all through the same incremental engine.
package main

import (
	"fmt"
	"log"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/topology"
)

func main() {
	underlay := topology.TransitStub(topology.TransitStubParams{
		Transits: 2, StubsPerTrans: 2, NodesPerStub: 4,
		TransitLatency: 0.050, StubLatency: 0.010, IntraLatency: 0.002,
	})
	overlay := topology.NewOverlay(underlay, 3, 11)

	src := programs.Combine(programs.ShortestPathDV(""), programs.Multicast())
	prog, err := parser.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range overlay.Links {
		cost := l.Cost[topology.Latency]
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", string(l.A), string(l.B), cost),
			programs.LinkFact("link", string(l.B), string(l.A), cost))
	}
	root := string(overlay.Nodes[0])
	members := []string{
		string(overlay.Nodes[5]), string(overlay.Nodes[11]), string(overlay.Nodes[17]),
	}
	for _, m := range members {
		prog.Facts = append(prog.Facts, programs.MemberFact(m, root))
	}

	sim := simnet.New(11)
	cluster, err := engine.NewCluster(sim, prog,
		engine.Options{AggSel: true}, engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range overlay.Nodes {
		cluster.AddNode(n)
	}
	for _, l := range overlay.Links {
		if err := sim.AddLink(l.A, l.B, l.LatencySec, 0); err != nil {
			log.Fatal(err)
		}
	}
	ok, err := cluster.Run(20_000_000)
	if err != nil || !ok {
		log.Fatalf("run: quiesced=%v err=%v", ok, err)
	}

	fmt.Printf("multicast tree rooted at %s, members %v:\n", root, members)
	printTree(cluster)

	// Fail the root's busiest tree link and watch the tree repair.
	var failA, failB string
	for _, c := range cluster.Tuples("child") {
		if c.Fields[0].Addr() == root {
			failA, failB = root, c.Fields[2].Addr()
			break
		}
	}
	if failA == "" {
		log.Fatal("no tree edge at the root?")
	}
	l, okL := overlay.Link(simnet.NodeID(failA), simnet.NodeID(failB))
	if !okL {
		log.Fatalf("no overlay link %s-%s", failA, failB)
	}
	cost := l.Cost[topology.Latency]
	fmt.Printf("\nfailing tree link %s <-> %s ...\n\n", failA, failB)
	sim.ScheduleFunc(1, func(now float64) {
		cluster.Inject(failA, engine.Deletion(programs.LinkFact("link", failA, failB, cost)))
		cluster.Inject(failB, engine.Deletion(programs.LinkFact("link", failB, failA, cost)))
	})
	if !sim.RunToQuiescence(20_000_000) {
		log.Fatal("repair did not quiesce")
	}
	fmt.Println("repaired tree:")
	printTree(cluster)
}

func printTree(cluster *engine.Cluster) {
	for _, c := range cluster.Tuples("child") {
		fmt.Printf("  %s -> %s\n", c.Fields[0].Addr(), c.Fields[2].Addr())
	}
	for _, f := range cluster.Tuples("fanout") {
		if f.Fields[2].Int() > 1 {
			fmt.Printf("  (%s forwards to %d children)\n", f.Fields[0].Addr(), f.Fields[2].Int())
		}
	}
}
