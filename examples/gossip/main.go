// Gossip: an epidemic failure detector in NDlog. Every round each node
// heartbeats a rising counter and pushes its whole liveness view to two
// random partners; one rule reduces incoming rumors with max<C> into a
// per-peer freshness table. Failure detection is heartbeat staleness —
// a dead node's counter freezes while everyone else's keeps climbing,
// so once the lag passes the detection threshold the node stands
// detected everywhere with no retraction protocol at all.
//
// 20 nodes converge to full mutual freshness within the infection-model
// bound (~3·log2 n rounds), then two nodes fail and every survivor
// detects exactly those two.
package main

import (
	"fmt"
	"log"

	"ndlog/internal/conform"
)

func main() {
	o := conform.DefaultGossipOpts(5)
	o.Nodes = 20
	r, err := conform.NewGossipRun(o)
	if err != nil {
		log.Fatal(err)
	}

	bound := r.ConvergeRounds()
	r.RunRounds(bound)
	rounds := bound
	for len(r.CheckFresh(nil)) > 0 {
		if rounds++; rounds > bound+5 {
			log.Fatalf("view not fresh after %d rounds: %v", rounds, r.CheckFresh(nil)[0])
		}
		r.RunRounds(1)
	}
	fmt.Printf("%d nodes, fanout %d: every node knows every other fresh after %d rounds (bound %d)\n",
		o.Nodes, o.Fanout, rounds, bound)

	dead := []string{r.Names[3], r.Names[11]}
	fmt.Printf("\nfailing %s and %s ...\n", dead[0], dead[1])
	for _, d := range dead {
		r.Fail(d)
	}
	r.RunRounds(r.DetectRounds() + 1)
	if errs := r.CheckDetected(nil, dead); len(errs) > 0 {
		log.Fatalf("detection failed: %v", errs[0])
	}
	if errs := r.CheckFresh(nil); len(errs) > 0 {
		log.Fatalf("survivor freshness lost: %v", errs[0])
	}
	fmt.Printf("after %d more rounds every survivor has detected both (counters stale past the %d-round threshold),\n",
		r.DetectRounds()+1, r.DetectRounds())
	fmt.Println("and all survivor-to-survivor entries are still fresh — no false positives")
}
