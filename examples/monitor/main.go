// Monitor: distributed network monitoring and debugging as declarative
// queries (Section 1: "dynamic runtime checks to test distributed
// properties of the network can easily be expressed as declarative
// queries").
//
// Three monitoring queries run over the same link state:
//
//   - degree:   each node's neighbor count (a local aggregate),
//   - reachCnt: how many nodes each node can reach (membership monitor),
//   - stretch:  paths whose hop length exceeds a threshold (an alert).
//
// After a partition (cutting the only inter-domain links), the monitors
// recompute incrementally and the reach counts expose the split.
package main

import (
	"fmt"
	"log"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
)

const monitorSrc = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2,3)).
materialize(reachPair, infinity, infinity, keys(1,2)).

// Local aggregate: node degree.
d1 degree(@N, count<D>) :- #link(@N,@D,_C).

// Distributed recursion: reachability with the hop vector for loop
// avoidance.
r1 reach(@S,@D,P) :- #link(@S,@D,_C), P := f_concatPath(S, [D]).
r2 reach(@S,@D,P) :- #link(@S,@Z,_C), reach(@Z,@D,P2),
	f_member(P2, S) == false, f_size(P2) < 6, P := f_concatPath(S, P2).

// Membership monitor: how many distinct nodes can I reach? reach holds
// one tuple per discovered path, so project the (src,dst) pair first —
// the reachPair table's primary key deduplicates, and its derivation
// count keeps deletions exact.
p1 reachPair(@S,@D) :- reach(@S,@D,_P).
m1 reachCnt(@S, count<D>) :- reachPair(@S,@D).

// Alert: a known route longer than 4 hops.
a1 stretch(@S,@D,L) :- reach(@S,@D,P), L := f_size(P), L > 4.

query reachCnt(@S, C).
`

func main() {
	// Two rings of four nodes (west w0..w3, east e0..e3) joined by two
	// bridge links. Cutting the bridges partitions the network.
	west := []string{"w0", "w1", "w2", "w3"}
	east := []string{"e0", "e1", "e2", "e3"}
	var edges [][2]string
	ring := func(ns []string) {
		for i := range ns {
			edges = append(edges, [2]string{ns[i], ns[(i+1)%len(ns)]})
		}
	}
	ring(west)
	ring(east)
	bridges := [][2]string{{"w0", "e0"}, {"w2", "e2"}}
	edges = append(edges, bridges...)

	prog, err := parser.Parse(monitorSrc)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range edges {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", e[0], e[1], 1),
			programs.LinkFact("link", e[1], e[0], 1))
	}

	sim := simnet.New(3)
	cluster, err := engine.NewCluster(sim, prog, engine.Options{},
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range append(append([]string{}, west...), east...) {
		cluster.AddNode(simnet.NodeID(n))
	}
	for _, e := range edges {
		if err := sim.AddLink(simnet.NodeID(e[0]), simnet.NodeID(e[1]), 0.005, 0); err != nil {
			log.Fatal(err)
		}
	}
	ok, err := cluster.Run(10_000_000)
	if err != nil || !ok {
		log.Fatalf("run: quiesced=%v err=%v", ok, err)
	}

	report(cluster)

	// Partition the network: cut both bridges; the count algorithm
	// retracts every cross-partition reach tuple and the membership
	// monitor drops from 7 to 3 on every node.
	fmt.Println("\ncutting the two bridge links ...")
	for _, b := range bridges {
		cluster.Inject(b[0], engine.Deletion(programs.LinkFact("link", b[0], b[1], 1)))
		cluster.Inject(b[1], engine.Deletion(programs.LinkFact("link", b[1], b[0], 1)))
	}
	if !sim.RunToQuiescence(10_000_000) {
		log.Fatal("partition did not quiesce")
	}
	fmt.Println("monitors after the partition:")
	fmt.Println()
	report(cluster)
}

func report(cluster *engine.Cluster) {
	fmt.Println("node       degree  reachable")
	counts := map[string][2]int64{}
	for _, t := range cluster.Tuples("degree") {
		c := counts[t.Fields[0].Addr()]
		c[0] = t.Fields[1].Int()
		counts[t.Fields[0].Addr()] = c
	}
	for _, t := range cluster.Tuples("reachCnt") {
		c := counts[t.Fields[0].Addr()]
		c[1] = t.Fields[1].Int()
		counts[t.Fields[0].Addr()] = c
	}
	for _, id := range cluster.Nodes() {
		c := counts[id]
		fmt.Printf("%-10s %6d %10d\n", id, c[0], c[1])
	}
	alerts := cluster.Tuples("stretch")
	fmt.Printf("stretch alerts (>4 hops): %d\n", len(alerts))
}
