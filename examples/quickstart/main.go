// Quickstart: the paper's running example end to end.
//
// It parses the shortest-path NDlog program of Figure 1, loads the
// five-node network of Figure 2, evaluates the program with the
// centralized engine, and prints the shortest paths — including the
// Section 2.2 walk-through result: node a reaches b at cost 2 via c.
package main

import (
	"fmt"
	"log"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

func main() {
	// The NDlog program: SP1..SP4 plus the query (Figure 1).
	src := programs.ShortestPath("")
	fmt.Println("// NDlog program (Figure 1):")
	fmt.Print(src)

	prog, err := parser.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 2 network: bidirectional links.
	links := []struct {
		a, b string
		cost float64
	}{
		{"a", "b", 5}, {"a", "c", 1}, {"c", "b", 1}, {"b", "d", 1}, {"e", "a", 1},
	}
	for _, l := range links {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}

	c, err := engine.NewCentral(prog, engine.Options{AggSel: true})
	if err != nil {
		log.Fatal(err)
	}
	c.LoadFacts()

	fmt.Println("\n// shortest paths:")
	for _, t := range c.QueryResults() {
		fmt.Printf("%s.\n", t)
	}

	// Dynamics (Section 4): update link(a,b) from cost 5 to 1 and watch
	// the shortest paths recompute incrementally.
	fmt.Println("\n// after updating link(a,b) cost 5 -> 1:")
	c.Update(programs.LinkFact("link", "a", "b", 5), programs.LinkFact("link", "a", "b", 1))
	c.Update(programs.LinkFact("link", "b", "a", 5), programs.LinkFact("link", "b", "a", 1))
	for _, t := range c.QueryResults() {
		fmt.Printf("%s.\n", t)
	}
}
