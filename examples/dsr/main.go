// DSR: targeted route discovery in the style of dynamic source routing
// (Section 5.1.2), using magic sets and predicate reordering.
//
// Instead of computing all-pairs shortest paths bottom-up, the top-down
// program explores from the query source only, filters at the
// destination, and returns the answer along the reverse path — caching
// every node's optimal suffix on the way back (Section 5.2). A second
// query for the same destination then terminates early on cache hits.
package main

import (
	"fmt"
	"log"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/topology"
	"ndlog/internal/val"
)

func main() {
	underlay := topology.TransitStub(topology.TransitStubParams{
		Transits: 2, StubsPerTrans: 2, NodesPerStub: 4,
		TransitLatency: 0.050, StubLatency: 0.010, IntraLatency: 0.002,
	})
	overlay := topology.NewOverlay(underlay, 3, 7)

	prog, err := parser.Parse(programs.CachedSourceRoute())
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range overlay.Links {
		cost := l.Cost[topology.HopCount]
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", string(l.A), string(l.B), cost),
			programs.LinkFact("link", string(l.B), string(l.A), cost))
	}

	sim := simnet.New(7)
	cluster, err := engine.NewCluster(sim, prog,
		engine.Options{
			AggSel:       true,
			AggSelPreds:  []string{"pathDst"},
			StrandFilter: cacheFilter,
		},
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range overlay.Nodes {
		cluster.AddNode(n)
	}
	for _, l := range overlay.Links {
		if err := sim.AddLink(l.A, l.B, l.LatencySec, 0); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Seed(); err != nil {
		log.Fatal(err)
	}
	sim.RunToQuiescence(10_000_000)

	src1 := string(overlay.Nodes[0])
	src2 := string(overlay.Nodes[1])
	dst := string(overlay.Nodes[len(overlay.Nodes)-1])

	runQuery := func(s, d string) {
		before := sim.Bytes()
		if err := cluster.Inject(s, engine.Insert(programs.MagicQueryFact(s, d))); err != nil {
			log.Fatal(err)
		}
		if !sim.RunToQuiescence(10_000_000) {
			log.Fatal("query did not quiesce")
		}
		fmt.Printf("query %s -> %s: %.1f KB\n", s, d, float64(sim.Bytes()-before)/1000)
		// Several candidate answers can arrive (direct discovery plus
		// cache hits); the source takes the cheapest. Its path vector is
		// the explored prefix — on a cache hit it ends at the node whose
		// cached suffix completes the route.
		var best *val.Tuple
		for _, t := range cluster.Node(simnet.NodeID(s)).Tuples("answer") {
			t := t
			if t.Fields[0].Addr() != s || t.Fields[2].Addr() != d {
				continue
			}
			if best == nil || t.Fields[4].Float() < best.Fields[4].Float() {
				best = &t
			}
		}
		if best == nil {
			fmt.Println("  no route")
			return
		}
		fmt.Printf("  best route: %v hops, prefix %v (suffix cost %v cached)\n",
			best.Fields[4].Float(), best.Fields[3], best.Fields[5].Float())
	}

	fmt.Println("first query (cold caches):")
	runQuery(src1, dst)

	fmt.Println("\nsecond query, same destination (warm caches prune exploration):")
	runQuery(src2, dst)

	// Show where suffixes were cached.
	fmt.Println("\ncached suffixes to", dst, ":")
	for _, n := range overlay.Nodes {
		for _, t := range cluster.Node(n).Tuples("cache") {
			if t.Fields[1].Addr() == dst {
				fmt.Printf("  %-8s knows cost %.0f\n", n, t.Fields[2].Float())
			}
		}
	}
}

// cacheFilter prunes exploration at nodes holding a cached suffix for
// the query destination and keeps the cache-hit rule scoped to fresh
// exploration tuples (same policy as the Figure 11 experiment).
func cacheFilter(n *engine.Node, rule string, d engine.Delta) bool {
	if rule == "hit1" && d.Tuple.Pred == "cache" {
		return false
	}
	if rule != "cs2" || d.Sign < 0 || d.Tuple.Pred != "pathDst" {
		return true
	}
	qd := d.Tuple.Fields[2]
	probe := val.NewTuple("cache", val.NewAddr(n.ID()), qd, val.Nil)
	if e, ok := n.Catalog().Get("cache").Get(probe); ok && e.Tuple.Fields[1].Equal(qd) {
		return false
	}
	return true
}
