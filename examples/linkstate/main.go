// Linkstate: link-state routing as an NDlog program — every node
// floods its adjacent link costs (hop-budgeted, duplicate-suppressed),
// assembles the full topology locally, and derives per-destination
// costs and first hops by relational rules instead of running Dijkstra
// imperatively.
//
// A 12-node ring-plus-chords graph converges, prints one node's
// routing table checked against a Go Dijkstra oracle, then a link
// cost changes and the flood repairs every table incrementally.
package main

import (
	"fmt"
	"log"
	"sort"

	"ndlog/internal/conform"
)

func await(r *conform.LinkStateRun, deadline float64) {
	for len(r.CheckRoutes()) > 0 {
		if r.Net.Sim.Now() >= deadline {
			log.Fatalf("routes wrong at t=%.1f: %v", r.Net.Sim.Now(), r.CheckRoutes()[0])
		}
		r.RunUntil(r.Net.Sim.Now() + 0.5)
	}
}

func printTable(r *conform.LinkStateRun, n string) {
	type route struct {
		dst, via string
		cost     int64
	}
	var routes []route
	via := map[string]string{}
	for _, row := range r.Net.Tuples(n, "lsRoute") {
		via[row.Fields[1].Addr()] = row.Fields[2].Addr()
	}
	for _, row := range r.Net.Tuples(n, "lsCost") {
		d := row.Fields[1].Addr()
		routes = append(routes, route{d, via[d], int64(row.Fields[2].Float())})
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].dst < routes[j].dst })
	fmt.Printf("routing table at %s (dst, first hop, cost):\n", n)
	for _, rt := range routes {
		fmt.Printf("  -> %-5s via %-5s cost %d\n", rt.dst, rt.via, rt.cost)
	}
}

func main() {
	o := conform.DefaultLinkStateOpts(7)
	o.Nodes, o.Chords = 12, 5
	r, err := conform.NewLinkStateRun(o)
	if err != nil {
		log.Fatal(err)
	}

	await(r, 30)
	fmt.Printf("%d nodes converged at t=%.2fs (virtual), all tables Dijkstra-exact\n\n",
		o.Nodes, r.Net.Sim.Now())
	printTable(r, r.Names[0])

	// Re-cost one edge: both endpoints withdraw the old link fact and
	// assert the new one; the flood carries the change everywhere and
	// every table must be Dijkstra-exact on the new graph.
	a, b := r.RandomEdge()
	newCost := 1 + r.Net.Rng.Int63n(o.MaxCost)
	fmt.Printf("\nre-costing link %s <-> %s to %d ...\n\n", a, b, newCost)
	r.SetCost(a, b, newCost)
	await(r, r.Net.Sim.Now()+30)
	fmt.Printf("re-converged at t=%.2fs\n\n", r.Net.Sim.Now())
	printTable(r, r.Names[0])
}
