// UDP: the same declarative routing protocol, but over real sockets.
//
// Every node of the Figure 2 network runs in its own goroutine with its
// own UDP socket on localhost; path advertisements travel as datagrams.
// This is the step from the simulated evaluation environment to an
// actual networked deployment — same program, same engine, different
// transport.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"ndlog/internal/engine"
	"ndlog/internal/netrun"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

func main() {
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		log.Fatal(err)
	}
	links := []struct {
		a, b string
		cost float64
	}{
		{"a", "b", 5}, {"a", "c", 1}, {"c", "b", 1}, {"b", "d", 1}, {"e", "a", 1},
	}
	for _, l := range links {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}

	nodes := []string{"a", "b", "c", "d", "e"}
	r, err := netrun.New(prog, nodes, engine.Options{AggSel: true})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	for _, n := range nodes {
		fmt.Printf("node %s listening on %s\n", n, r.Addr(n))
	}
	start := time.Now()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		log.Fatal("cluster did not settle")
	}
	fmt.Printf("\nconverged in %v wall time: %d datagrams, %d bytes\n",
		time.Since(start).Round(time.Millisecond), r.Messages(), r.Bytes())

	results := r.Tuples("shortestPath")
	sort.Strings(results)
	fmt.Printf("\nshortest paths (%d):\n", len(results))
	for _, k := range results {
		fmt.Println(" ", k)
	}

	// Live update over the wire.
	fmt.Println("\nupdating link(a,b) cost 5 -> 1 ...")
	r.Inject("a", engine.Insert(programs.LinkFact("link", "a", "b", 1)))
	r.Inject("b", engine.Insert(programs.LinkFact("link", "b", "a", 1)))
	r.WaitQuiescent(300*time.Millisecond, 15*time.Second)
	for _, k := range r.NodeTuples("a", "shortestPath") {
		fmt.Println(" ", k)
	}
}
