// Chord: the paper's flagship overlay (Section 3) — a distributed hash
// table's ring maintenance, successor lists, finger tables and lookups,
// all as NDlog rules over ring-interval arithmetic (f_sha1, f_inrange).
//
// A 16-node ring forms from a single landmark: each joiner looks up its
// own identifier, points its successor at the answer, and periodic
// stabilization (ask your successor for its predecessor) walks every
// node to its true place on the ring. Once stable, sampled lookups are
// checked against an oracle that sorts the ring identifiers directly;
// then a node joins and a node leaves and the ring repairs itself.
package main

import (
	"fmt"
	"log"
	"sort"

	"ndlog/internal/conform"
	"ndlog/internal/funcs"
	"ndlog/internal/val"
)

func main() {
	o := conform.DefaultChordOpts(42)
	o.Nodes, o.Reserve = 16, 1
	r, err := conform.NewChordRun(o)
	if err != nil {
		log.Fatal(err)
	}

	// Bring-up: staggered joins, then stabilization rounds until the
	// ring invariant (everyone's bestSucc is the oracle's successor)
	// holds everywhere.
	r.RunUntil(10)
	for len(r.CheckRing()) > 0 {
		if r.Net.Sim.Now() >= 200 {
			log.Fatalf("ring never converged by t=%.1f", r.Net.Sim.Now())
		}
		r.RunUntil(r.Net.Sim.Now() + o.StabEvery)
	}
	fmt.Printf("ring of %d converged at t=%.1fs (virtual)\n", o.Nodes, r.Net.Sim.Now())

	// Walk the ring in identifier order.
	type slot struct {
		name string
		id   int64
	}
	var ring []slot
	for _, n := range r.Names[:o.Nodes] {
		ring = append(ring, slot{n, funcs.RingID(val.NewAddr(n))})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].id < ring[j].id })
	fmt.Println("\nring order (node, identifier):")
	for _, s := range ring {
		fmt.Printf("  %s  %10d\n", s.name, s.id)
	}

	// Sampled lookups, answers checked against the sorted-ring oracle.
	// Answers are soft state, so check shortly after injecting and
	// reissue any sample whose answer was missed.
	samples := r.InjectLookups(8)
	report := append([]conform.LookupSample(nil), samples...)
	for attempt := 0; len(samples) > 0; attempt++ {
		r.RunUntil(r.Net.Sim.Now() + 2)
		failed, errs := r.CheckLookups(samples)
		if len(errs) > 0 {
			log.Fatalf("wrong lookup answer: %v", errs[0])
		}
		if attempt >= 5 {
			log.Fatalf("lookups: %d unanswered after %d attempts", len(failed), attempt+1)
		}
		samples = samples[:0]
		for _, s := range failed {
			samples = append(samples, r.Reinject(s))
		}
	}
	fmt.Println("\nlookups (key -> true successor), all oracle-checked:")
	for _, s := range report[:4] {
		fmt.Printf("  lookup(%10d) from %s -> %s\n", s.Key, s.Node, r.TrueSuccessor(s.Key))
	}
	fmt.Printf("  ... %d/%d resolved correctly\n", len(report), len(report))

	// Churn: one reserve node joins, one ring node leaves; stabilization
	// absorbs both and the invariant holds again.
	start := r.Net.Sim.Now() + 1
	r.Churn(start, 4, 1, 1)
	r.RunUntil(start + 6)
	for len(r.CheckRing()) > 0 {
		if r.Net.Sim.Now() >= start+60 {
			log.Fatalf("ring never re-converged after churn")
		}
		r.RunUntil(r.Net.Sim.Now() + o.StabEvery)
	}
	fmt.Printf("\nafter 1 join + 1 leave: ring re-converged at t=%.1fs\n", r.Net.Sim.Now())
}
