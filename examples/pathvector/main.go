// Pathvector: a path-vector routing protocol as a distributed NDlog
// query (the paper's declarative-routing motivation, Section 1).
//
// A 20-node transit-stub overlay runs the shortest-path program under
// the latency metric, one engine per node, over the discrete-event
// simulator. After convergence a link update is injected and the
// incremental recomputation is measured — the Figure 13 mechanism at
// example scale.
package main

import (
	"fmt"
	"log"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/topology"
)

func main() {
	// 2 transit domains, 2 stubs each, 4 nodes per stub = 20 nodes.
	underlay := topology.TransitStub(topology.TransitStubParams{
		Transits: 2, StubsPerTrans: 2, NodesPerStub: 4,
		TransitLatency: 0.050, StubLatency: 0.010, IntraLatency: 0.002,
	})
	overlay := topology.NewOverlay(underlay, 3, 42)
	fmt.Printf("overlay: %d nodes, %d links\n", len(overlay.Nodes), len(overlay.Links))

	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range overlay.Links {
		cost := l.Cost[topology.Latency]
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", string(l.A), string(l.B), cost),
			programs.LinkFact("link", string(l.B), string(l.A), cost))
	}

	sim := simnet.New(42)
	cluster, err := engine.NewCluster(sim, prog,
		engine.Options{AggSel: true},
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range overlay.Nodes {
		cluster.AddNode(n)
	}
	for _, l := range overlay.Links {
		if err := sim.AddLink(l.A, l.B, l.LatencySec, 0); err != nil {
			log.Fatal(err)
		}
	}

	ok, err := cluster.Run(10_000_000)
	if err != nil || !ok {
		log.Fatalf("run: quiesced=%v err=%v", ok, err)
	}
	fmt.Printf("converged at %.3fs: %d messages, %.1f KB total\n",
		sim.LastDelivery(), sim.Messages(), float64(sim.Bytes())/1000)

	// Routing table of the first node.
	src := overlay.Nodes[0]
	fmt.Printf("\nrouting table at %s:\n", src)
	for _, t := range cluster.Node(src).Tuples("shortestPath") {
		fmt.Printf("  -> %-8s cost %-8.1f via %s\n",
			t.Fields[1].Addr(), t.Fields[3].Float(), t.Fields[2])
	}

	// Inject a link failure: remove the first overlay link and watch the
	// protocol rerun incrementally (deletions propagate via the count
	// algorithm, then alternatives re-derive).
	l := overlay.Links[0]
	cost := l.Cost[topology.Latency]
	before := sim.Bytes()
	fmt.Printf("\nfailing link %s <-> %s ...\n", l.A, l.B)
	sim.ScheduleFunc(1, func(now float64) {
		cluster.Inject(string(l.A), engine.Deletion(programs.LinkFact("link", string(l.A), string(l.B), cost)))
		cluster.Inject(string(l.B), engine.Deletion(programs.LinkFact("link", string(l.B), string(l.A), cost)))
	})
	if !sim.RunToQuiescence(10_000_000) {
		log.Fatal("repair did not quiesce")
	}
	fmt.Printf("repaired at %.3fs using %.1f KB (vs %.1f KB from scratch)\n",
		sim.LastDelivery(), float64(sim.Bytes()-before)/1000, float64(before)/1000)

	fmt.Printf("\nrouting table at %s after failure:\n", src)
	for _, t := range cluster.Node(src).Tuples("shortestPath") {
		fmt.Printf("  -> %-8s cost %-8.1f via %s\n",
			t.Fields[1].Addr(), t.Fields[3].Float(), t.Fields[2])
	}
}
